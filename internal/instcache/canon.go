// Package instcache gives pebbling instances canonical identities and
// caches their solutions behind a bounded LRU with singleflight
// deduplication, so a serving front end never solves the same instance
// twice — not even when two concurrent requests describe it with
// different node numberings.
//
// The canonical key is computed by color refinement (1-WL) over the
// DAG followed by bounded individualize-and-refine tie-breaking: within
// the search budget the resulting labeling is isomorphism-invariant, so
// relabeled copies of an instance share a cache line. Graphs above
// canonMaxN nodes skip the search and key on their exact
// representation instead (bounding key cost on the serving request
// path). Correctness never depends on either budget: the key always
// hashes the exact adjacency structure under the chosen labeling, so
// two instances with equal keys are genuinely isomorphic (up to
// SHA-256 collisions) — a budget exhaustion can only cost cache hits,
// never poison the cache.
package instcache

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"rbpebble/internal/dag"
	"rbpebble/internal/pebble"
)

// canonMaxN bounds the graph size that gets full canonical labeling.
// Beyond it Canonical degrades to the representation-exact key (the
// identity labeling): isomorphic relabelings of huge graphs stop
// sharing cache lines, but identical representations — the common
// retry/duplicate case — still do, and the key stays O(n + m) instead
// of the superlinear refinement search a request-path attacker could
// lean on. Within the bound, refinement runs to full stabilization
// (at most n rounds), so path-like graphs become discrete without any
// individualization.
const canonMaxN = 512

// canonBudget caps the number of individualization branches explored
// while breaking refinement ties. Within budget the labeling is
// isomorphism-invariant; beyond it the first cell member is taken,
// which is deterministic for a given input but labeling-dependent.
const canonBudget = 128

// Canonical computes a canonical form of g: a digest identifying the
// graph up to isomorphism (within the size and search budgets; see the
// package comment) and the permutation perm with perm[orig] =
// canonical ID. Labels are ignored: they do not affect pebbling cost.
func Canonical(g *dag.DAG) ([sha256.Size]byte, []dag.NodeID) {
	n := g.N()
	if n == 0 {
		return sha256.Sum256(nil), nil
	}
	perm := make([]dag.NodeID, n)
	if n > canonMaxN {
		for v := range perm {
			perm[v] = dag.NodeID(v)
		}
		return sha256.Sum256(serialize(g, perm)), perm
	}
	colors := refine(g, make([]int32, n))
	budget := canonBudget
	ser, cperm := canonSearch(g, colors, &budget)
	return sha256.Sum256(ser), cperm
}

// refine runs color refinement to a stable partition: each round
// recolors every node by the signature (own color, sorted pred colors,
// sorted succ colors), with new color IDs assigned by the lexicographic
// order of the signatures so the result is independent of node
// numbering. The class count grows strictly until stable, so at most n
// rounds run (and Canonical caps n at canonMaxN).
func refine(g *dag.DAG, colors []int32) []int32 {
	n := g.N()
	classes := countClasses(colors)
	sig := make([]string, n)
	var buf []byte
	var nb []int32
	for iter := 0; iter < n; iter++ {
		for v := 0; v < n; v++ {
			buf = binary.BigEndian.AppendUint32(buf[:0], uint32(colors[v]))
			buf = appendSortedColors(buf, &nb, colors, g.Preds(dag.NodeID(v)))
			buf = append(buf, 0xff)
			buf = appendSortedColors(buf, &nb, colors, g.Succs(dag.NodeID(v)))
			sig[v] = string(buf)
		}
		uniq := make([]string, 0, classes+1)
		seen := make(map[string]int32, classes+1)
		for _, s := range sig {
			if _, ok := seen[s]; !ok {
				seen[s] = 0
				uniq = append(uniq, s)
			}
		}
		sort.Strings(uniq)
		for i, s := range uniq {
			seen[s] = int32(i)
		}
		for v := 0; v < n; v++ {
			colors[v] = seen[sig[v]]
		}
		if len(uniq) == classes || len(uniq) == n {
			break // stable (or discrete)
		}
		classes = len(uniq)
	}
	return colors
}

func appendSortedColors(buf []byte, scratch *[]int32, colors []int32, nodes []dag.NodeID) []byte {
	nb := (*scratch)[:0]
	for _, u := range nodes {
		nb = append(nb, colors[u])
	}
	sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	for _, c := range nb {
		buf = binary.BigEndian.AppendUint32(buf, uint32(c))
	}
	*scratch = nb
	return buf
}

func countClasses(colors []int32) int {
	seen := map[int32]struct{}{}
	for _, c := range colors {
		seen[c] = struct{}{}
	}
	return len(seen)
}

// canonSearch resolves refinement ties by individualize-and-refine:
// pick the smallest-color cell with >= 2 members, individualize each
// member in turn (budget permitting), refine, recurse, and keep the
// lexicographically smallest serialization. Trying every member of an
// invariantly-chosen cell is what makes the result independent of the
// input labeling.
func canonSearch(g *dag.DAG, colors []int32, budget *int) ([]byte, []dag.NodeID) {
	n := g.N()
	cell := targetCell(colors)
	if cell == nil {
		perm := make([]dag.NodeID, n)
		for v, c := range colors {
			perm[v] = dag.NodeID(c)
		}
		return serialize(g, perm), perm
	}
	var bestSer []byte
	var bestPerm []dag.NodeID
	for i, v := range cell {
		if i > 0 && *budget <= 0 {
			break // budget gone: keep only the first branch
		}
		*budget--
		branch := make([]int32, n)
		copy(branch, colors)
		branch[v] = int32(n) // fresh marker color, re-densified by refine
		ser, perm := canonSearch(g, refine(g, branch), budget)
		if bestSer == nil || lessBytes(ser, bestSer) {
			bestSer, bestPerm = ser, perm
		}
	}
	return bestSer, bestPerm
}

// targetCell returns the members of the smallest color value that still
// holds >= 2 nodes (nil when the coloring is discrete). Cells are
// identified by color value, which is labeling-invariant.
func targetCell(colors []int32) []dag.NodeID {
	byColor := map[int32][]dag.NodeID{}
	var best int32 = -1
	for v, c := range colors {
		byColor[c] = append(byColor[c], dag.NodeID(v))
		if len(byColor[c]) >= 2 && (best == -1 || c < best) {
			best = c
		}
	}
	if best == -1 {
		return nil
	}
	return byColor[best]
}

// serialize emits the adjacency structure under a discrete labeling:
// node count, then for each canonical node its sorted canonical
// predecessor list. The output determines the graph up to isomorphism.
func serialize(g *dag.DAG, perm []dag.NodeID) []byte {
	n := g.N()
	inv := make([]dag.NodeID, n)
	for v, c := range perm {
		inv[c] = dag.NodeID(v)
	}
	buf := binary.BigEndian.AppendUint32(nil, uint32(n))
	var preds []int32
	for c := 0; c < n; c++ {
		v := inv[c]
		preds = preds[:0]
		for _, u := range g.Preds(v) {
			preds = append(preds, int32(perm[u]))
		}
		sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(preds)))
		for _, u := range preds {
			buf = binary.BigEndian.AppendUint32(buf, uint32(u))
		}
	}
	return buf
}

func lessBytes(a, b []byte) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Instance is one cacheable pebbling problem.
type Instance struct {
	G          *dag.DAG
	Model      pebble.Model
	R          int
	Convention pebble.Convention
}

// Key returns the canonical cache key of the instance — the canonical
// graph digest combined with every cost-relevant parameter — and the
// canonical permutation (perm[orig] = canonical ID) needed to translate
// traces in and out of canonical node numbering.
func (in Instance) Key() (string, []dag.NodeID) {
	digest, perm := Canonical(in.G)
	key := fmt.Sprintf("%x|%s|eps%d|r%d|sb%t|bb%t",
		digest, in.Model.Kind, in.Model.EpsDenom, in.R,
		in.Convention.SourcesStartBlue, in.Convention.SinksMustBeBlue)
	return key, perm
}

// ToCanonical maps a move sequence from original node IDs to canonical
// ones (perm[orig] = canonical).
func ToCanonical(moves []pebble.Move, perm []dag.NodeID) []pebble.Move {
	out := make([]pebble.Move, len(moves))
	for i, m := range moves {
		out[i] = pebble.Move{Kind: m.Kind, Node: perm[m.Node]}
	}
	return out
}

// FromCanonical maps a canonical-ID move sequence back to the node IDs
// of an instance whose canonical permutation is perm.
func FromCanonical(moves []pebble.Move, perm []dag.NodeID) []pebble.Move {
	inv := make([]dag.NodeID, len(perm))
	for v, c := range perm {
		inv[c] = dag.NodeID(v)
	}
	out := make([]pebble.Move, len(moves))
	for i, m := range moves {
		out[i] = pebble.Move{Kind: m.Kind, Node: inv[m.Node]}
	}
	return out
}
