package instcache

import (
	"container/list"
	"context"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"rbpebble/internal/obs"
	"rbpebble/internal/pebble"
)

// Value is one cached solution, stored in canonical node numbering so
// every isomorphic requester can share it (translate with
// ToCanonical/FromCanonical around the cache). The JSON form is the
// node-to-node wire format for drain handoff and replication —
// canonical numbering makes it portable across nodes by construction.
type Value struct {
	// Moves is the incumbent trace in canonical node IDs.
	Moves []pebble.Move `json:"moves,omitempty"`
	// UpperScaled and LowerScaled are the certified interval ends.
	UpperScaled int64 `json:"upper_scaled"`
	LowerScaled int64 `json:"lower_scaled"`
	// Optimal marks a closed interval (proven optimum). Optimal values
	// live in the primary cache segment and are never evicted by
	// interval entries.
	Optimal bool `json:"optimal,omitempty"`
	// Source names the strategy that produced the incumbent.
	Source string `json:"source,omitempty"`
	// Tier is the budget tier (TierForBudget) whose deadline produced
	// this interval entry; 0 for proven-optimal values, where budget no
	// longer matters.
	Tier int `json:"tier,omitempty"`
}

// TierForBudget buckets a solve budget into a doubling tier: budgets in
// [2^(t-1), 2^t) milliseconds share tier t. Interval cache entries are
// keyed by tier so a cheap 50ms attempt and an expensive 10s attempt at
// the same instance are tracked separately — and a request is served a
// stored interval directly only when a strictly HIGHER tier already
// tried harder than this request could (lower or equal tiers instead
// warm-start a fresh refinement, which is what makes repeated hard
// instances converge).
func TierForBudget(d time.Duration) int {
	ms := d.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return bits.Len64(uint64(ms))
}

// Stats are the cache's monotone counters, exposed via /metrics.
type Stats struct {
	// Hits and Misses count lookups against stored proven-optimal
	// entries.
	Hits, Misses uint64
	// SharedFlights counts lookups that latched onto another request's
	// in-flight solve instead of starting their own.
	SharedFlights uint64
	// Evictions counts LRU evictions of proven-optimal entries.
	Evictions uint64
	// Entries is the current number of stored proven-optimal entries.
	Entries int
	// IntervalEntries is the current number of stored deadline-limited
	// interval entries (across all budget tiers).
	IntervalEntries int
	// IntervalHits counts lookups served directly from a stored
	// interval because a strictly higher budget tier had already tried
	// harder than the request's own budget.
	IntervalHits uint64
	// IntervalStores counts interval entries written (new or replaced).
	IntervalStores uint64
	// IntervalEvictions counts LRU evictions of interval entries
	// (interval entries only ever displace each other, never
	// proven-optimal ones).
	IntervalEvictions uint64
	// WarmStarts counts solves that were seeded from a cached interval.
	WarmStarts uint64
	// Tightenings counts stored intervals that strictly tightened the
	// previously cached interval for their instance (the cross-request
	// convergence signal).
	Tightenings uint64
	// Imported counts entries merged in from other cluster nodes
	// (drain handoff or proven-optimal replication) that carried new
	// information.
	Imported uint64
}

// flight is one in-progress solve that concurrent identical requests
// wait on.
type flight struct {
	done chan struct{}
	val  Value
	err  error
}

// Cache is a bounded cache of solved instances with singleflight
// deduplication, split into two LRU segments: proven-optimal values
// (authoritative, never displaced by anything weaker) and
// deadline-limited certified intervals keyed by (instance, budget
// tier), which warm-start later refinements of the same instance. The
// zero value is not usable; call New.
type Cache struct {
	mu      sync.Mutex
	max     int
	imax    int
	ll      *list.List // optimal entries; front = most recent
	entries map[string]*list.Element
	ill     *list.List // interval entries; front = most recent
	tiers   map[string]map[int]*list.Element
	flights map[string]*flight

	hits, misses, shared, evictions           uint64
	ihits, istores, ievictions, warms, tights uint64
	imported                                  uint64
}

type entry struct {
	key  string
	tier int // 0 for optimal entries
	val  Value
}

// New returns a cache bounded to max proven-optimal entries and max
// interval entries (max <= 0 means 256 each). The two segments are
// bounded independently, so interval entries can never evict
// proven-optimal ones.
func New(max int) *Cache {
	if max <= 0 {
		max = 256
	}
	return &Cache{
		max:     max,
		imax:    max,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		ill:     list.New(),
		tiers:   make(map[string]map[int]*list.Element),
		flights: make(map[string]*flight),
	}
}

// Do returns the cached value for key, or runs fn to produce it. At
// most one fn runs per key at a time: concurrent callers with the same
// key share the first caller's result (shared=true). hit=true marks a
// response served without running fn: a proven-optimal entry, or a
// stored interval from a strictly higher budget tier than the
// request's. Otherwise fn runs, seeded with the merged cached interval
// for the instance when one exists (warm != nil, warmed=true). Optimal
// results are stored in the primary segment; deadline-limited results
// are merged with the cached interval (the interval only ever
// tightens) and stored under the request's budget tier — and if the
// merged interval closes, it is promoted to the optimal segment.
//
// ctx bounds only the caller's WAIT on another request's in-flight
// solve — a short-deadline request latching onto a long-budget flight
// gives up with ctx.Err() at its own deadline instead of inheriting
// the leader's. The leader's fn itself is never interrupted by ctx.
func (c *Cache) Do(ctx context.Context, key string, tier int, fn func(warm *Value) (Value, error)) (val Value, hit, shared, warmed bool, err error) {
	c.mu.Lock()
	if v, ok := c.probeLocked(key, tier); ok {
		c.mu.Unlock()
		return v, true, false, false, nil
	}
	c.misses++
	if f, ok := c.flights[key]; ok {
		c.shared++
		c.mu.Unlock()
		// The wait on another request's in-flight solve is its own span:
		// "where did this request's time go" for a latched waiter is
		// almost entirely here.
		_, wsp := obs.StartSpan(ctx, "cache-wait")
		select {
		case <-f.done:
			wsp.End()
			return f.val, false, true, false, f.err
		case <-ctx.Done():
			wsp.SetAttr("err", ctx.Err().Error())
			wsp.End()
			return Value{}, false, true, false, ctx.Err()
		}
	}
	var warm *Value
	if w, ok := c.mergedIntervalLocked(key); ok {
		warm = &w
		warmed = true
		c.warms++
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	// If fn panics the flight must still be torn down — waiters freed
	// with an error, the flights entry removed — or the key would be
	// poisoned forever (every later request blocking its full deadline
	// on a done channel nobody will close). The panic then propagates.
	defer func() {
		if r := recover(); r != nil {
			f.err = fmt.Errorf("instcache: solve panicked: %v", r)
			c.mu.Lock()
			delete(c.flights, key)
			c.mu.Unlock()
			close(f.done)
			panic(r)
		}
	}()
	f.val, f.err = fn(warm)

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		// Store (merging with the cached interval) before releasing the
		// waiters, so they observe the tightened value too.
		f.val = c.storeLocked(key, tier, warm, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, false, false, warmed, f.err
}

// Probe is the read-only half of Do: it returns the value a lookup of
// (key, tier) would be served without running a solve — a
// proven-optimal entry, or the merged interval when a strictly higher
// budget tier already tried harder — and counts it as a cache hit.
// A miss counts nothing: the caller is expected to follow up with Do,
// which records the miss itself. The batched request plane probes a
// whole batch up front to classify items into scheduling lanes.
func (c *Cache) Probe(key string, tier int) (Value, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.probeLocked(key, tier)
}

// ProbeBatch probes many (key, tier) pairs under one lock acquisition
// — the amortized form of Probe for batch requests. The result slice
// is parallel to keys: nil marks a miss. keys and tiers must have
// equal length.
func (c *Cache) ProbeBatch(keys []string, tiers []int) []*Value {
	out := make([]*Value, len(keys))
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, key := range keys {
		if v, ok := c.probeLocked(key, tiers[i]); ok {
			v := v
			out[i] = &v
		}
	}
	return out
}

func (c *Cache) probeLocked(key string, tier int) (Value, bool) {
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).val, true
	}
	if v, ok := c.intervalAboveLocked(key, tier); ok {
		c.ihits++
		return v, true
	}
	return Value{}, false
}

// intervalAboveLocked returns the merged cached interval for key when
// some stored tier strictly exceeds reqTier — a higher budget already
// tried harder than this request can, so re-solving cannot be expected
// to tighten anything.
func (c *Cache) intervalAboveLocked(key string, reqTier int) (Value, bool) {
	best := -1
	for t := range c.tiers[key] {
		if t > best {
			best = t
		}
	}
	if best <= reqTier {
		return Value{}, false
	}
	return c.mergedIntervalLocked(key)
}

// mergedIntervalLocked folds every stored tier of key into the
// tightest certified interval (max lower, min upper with its trace),
// touching the contributing entries' LRU positions.
func (c *Cache) mergedIntervalLocked(key string) (Value, bool) {
	m := c.tiers[key]
	if len(m) == 0 {
		return Value{}, false
	}
	var out Value
	first := true
	for _, el := range m {
		e := el.Value.(*entry)
		c.ill.MoveToFront(el)
		if first {
			out = e.val
			first = false
			continue
		}
		out = tighten(out, e.val)
	}
	return out, true
}

// tighten merges two certified intervals of the same instance: the
// larger lower bound, and the smaller upper bound together with its
// witness trace and provenance.
func tighten(a, b Value) Value {
	out := a
	if b.UpperScaled < a.UpperScaled {
		out.Moves, out.UpperScaled, out.Source, out.Tier = b.Moves, b.UpperScaled, b.Source, b.Tier
	}
	if b.LowerScaled > out.LowerScaled {
		out.LowerScaled = b.LowerScaled
	}
	return out
}

// storeLocked records a solve result: optimal values go to the primary
// segment (dropping any interval entries for the instance — they are
// obsolete), deadline-limited values are merged with the cached
// interval and stored under the request's budget tier. A merged
// interval that closes is promoted to the optimal segment. Returns the
// value the caller should serve (the merged interval, never wider than
// what was already known).
func (c *Cache) storeLocked(key string, tier int, warm *Value, v Value) Value {
	if v.Optimal {
		v.Tier = 0
		c.insertOptimalLocked(key, v)
		c.dropIntervalsLocked(key)
		return v
	}
	merged := v
	if warm != nil {
		merged = tighten(*warm, v)
	}
	if v.Tier > 0 && v.Tier < tier {
		// The solve stopped well short of its requested budget
		// (cancellation, shutdown grace): credit only the tier it
		// actually consumed, or a weak interval would masquerade as a
		// high-budget attempt and be served to lower-budget requests
		// that could genuinely tighten it.
		tier = v.Tier
	}
	merged.Tier = tier
	if merged.LowerScaled >= merged.UpperScaled && merged.UpperScaled > 0 {
		// The bounds met across requests: the interval is closed even
		// though no single solve proved it alone.
		merged.Optimal = true
		merged.Tier = 0
		c.insertOptimalLocked(key, merged)
		c.dropIntervalsLocked(key)
		return merged
	}
	if warm != nil && (merged.LowerScaled > warm.LowerScaled || merged.UpperScaled < warm.UpperScaled) {
		c.tights++
	}
	c.istores++
	m := c.tiers[key]
	if m == nil {
		m = make(map[int]*list.Element)
		c.tiers[key] = m
	}
	if el, ok := m[tier]; ok {
		el.Value.(*entry).val = merged
		c.ill.MoveToFront(el)
		return merged
	}
	m[tier] = c.ill.PushFront(&entry{key: key, tier: tier, val: merged})
	for c.ill.Len() > c.imax {
		back := c.ill.Back()
		c.removeIntervalLocked(back)
		c.ievictions++
	}
	return merged
}

func (c *Cache) removeIntervalLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ill.Remove(el)
	if m := c.tiers[e.key]; m != nil {
		delete(m, e.tier)
		if len(m) == 0 {
			delete(c.tiers, e.key)
		}
	}
}

func (c *Cache) dropIntervalsLocked(key string) {
	for _, el := range c.tiers[key] {
		c.ill.Remove(el)
	}
	delete(c.tiers, key)
}

func (c *Cache) insertOptimalLocked(key string, v Value) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&entry{key: key, val: v})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*entry).key)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:              c.hits,
		Misses:            c.misses,
		SharedFlights:     c.shared,
		Evictions:         c.evictions,
		Entries:           c.ll.Len(),
		IntervalEntries:   c.ill.Len(),
		IntervalHits:      c.ihits,
		IntervalStores:    c.istores,
		IntervalEvictions: c.ievictions,
		WarmStarts:        c.warms,
		Tightenings:       c.tights,
		Imported:          c.imported,
	}
}

// Entry is one cache line on the wire: the canonical instance key, the
// budget tier (0 for proven-optimal), and the value in canonical node
// numbering. It is the unit of drain handoff and replication between
// cluster nodes — because both the key and the trace are canonical,
// an entry produced on one node is directly usable on any other.
type Entry struct {
	Key   string `json:"key"`
	Tier  int    `json:"tier,omitempty"`
	Value Value  `json:"value"`
}

// Export snapshots every cached entry — the proven-optimal segment and
// every budget tier of the interval segment — without disturbing LRU
// order. A draining node exports its cache and pushes it to its ring
// successors so failover warm-starts instead of re-searching.
func (c *Cache) Export() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, c.ll.Len()+c.ill.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		out = append(out, Entry{Key: e.key, Value: e.val})
	}
	// Oldest first in both segments, so an importer that evicts under
	// pressure keeps the most recently used entries.
	for el := c.ill.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		out = append(out, Entry{Key: e.key, Tier: e.tier, Value: e.val})
	}
	return out
}

// Import merges entries from another node into this cache and returns
// how many carried new information. Proven-optimal entries are
// authoritative: they land in the optimal segment (dropping the key's
// now-obsolete intervals) unless the key is already proven. Interval
// entries merge through the same tighten-and-store path as local
// solves — the cached interval only ever tightens, and a merge whose
// bounds meet promotes to the optimal segment. Entries for instances
// this node has already proven optimal are skipped outright.
func (c *Cache) Import(entries []Entry) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	added := 0
	for _, e := range entries {
		if _, proven := c.entries[e.Key]; proven {
			continue
		}
		v := e.Value
		if v.Optimal {
			v.Tier = 0
			c.insertOptimalLocked(e.Key, v)
			c.dropIntervalsLocked(e.Key)
			added++
			c.imported++
			continue
		}
		tier := e.Tier
		if tier <= 0 {
			tier = v.Tier
		}
		if tier <= 0 {
			continue // malformed: an interval entry needs a budget tier
		}
		var warm *Value
		if w, ok := c.mergedIntervalLocked(e.Key); ok {
			if w.LowerScaled >= v.LowerScaled && w.UpperScaled <= v.UpperScaled {
				if _, have := c.tiers[e.Key][tier]; have {
					continue // nothing new: already at least this tight at this tier
				}
			}
			warm = &w
		}
		v.Tier = tier
		c.storeLocked(e.Key, tier, warm, v)
		added++
		c.imported++
	}
	return added
}
