package analysis

import (
	"bytes"
	"strings"
	"testing"

	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
	"rbpebble/internal/solve"
)

func solveTrace(t *testing.T, p solve.Problem) *pebble.Trace {
	t.Helper()
	sol, err := solve.TopoBelady(p)
	if err != nil {
		t.Fatal(err)
	}
	return sol.Trace
}

func TestProfileBasics(t *testing.T) {
	g := daggen.Pyramid(3)
	p := solve.Problem{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 3}
	tr := solveTrace(t, p)
	prof, err := NewProfile(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.RedOccupancy) != len(tr.Moves) {
		t.Fatal("occupancy length mismatch")
	}
	if prof.PeakRed() > p.R {
		t.Fatalf("peak red %d exceeds R", prof.PeakRed())
	}
	if prof.PeakRed() != prof.Final.MaxRed {
		t.Fatalf("peak red %d != result MaxRed %d", prof.PeakRed(), prof.Final.MaxRed)
	}
	if prof.MeanRed() <= 0 || prof.MeanRed() > float64(p.R) {
		t.Fatalf("mean red = %v", prof.MeanRed())
	}
	// Cumulative cost is non-decreasing and ends at the final cost.
	for i := 1; i < len(prof.CumulativeCost); i++ {
		if prof.CumulativeCost[i] < prof.CumulativeCost[i-1] {
			t.Fatal("cumulative cost decreased")
		}
	}
	last := prof.CumulativeCost[len(prof.CumulativeCost)-1]
	if last != prof.Final.Cost.Scaled(tr.Model) {
		t.Fatalf("cumulative end %d != final %d", last, prof.Final.Cost.Scaled(tr.Model))
	}
}

func TestProfileRejectsBadTrace(t *testing.T) {
	g := daggen.Chain(3)
	bad := &pebble.Trace{Model: pebble.NewModel(pebble.Oneshot), R: 2,
		Moves: []pebble.Move{{Kind: pebble.Load, Node: 0}}}
	if _, err := NewProfile(g, bad); err == nil {
		t.Fatal("illegal trace accepted")
	}
	incomplete := &pebble.Trace{Model: pebble.NewModel(pebble.Oneshot), R: 2,
		Moves: []pebble.Move{{Kind: pebble.Compute, Node: 0}}}
	if _, err := NewProfile(g, incomplete); err == nil {
		t.Fatal("incomplete trace accepted")
	}
}

func TestTransferBursts(t *testing.T) {
	g, _, _ := daggen.InputGroups(3, 3)
	p := solve.Problem{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 4}
	sol, err := solve.Topological(p) // store-all: many transfer bursts
	if err != nil {
		t.Fatal(err)
	}
	prof, err := NewProfile(g, sol.Trace)
	if err != nil {
		t.Fatal(err)
	}
	bursts := prof.TransferBursts()
	if len(bursts) == 0 {
		t.Fatal("store-all trace has no transfer bursts")
	}
	total := 0
	for _, b := range bursts {
		total += b
	}
	if total != prof.Final.Loads+prof.Final.Stores {
		t.Fatalf("burst sum %d != transfer count %d", total, prof.Final.Loads+prof.Final.Stores)
	}
}

func TestSummaryAndTimeline(t *testing.T) {
	g := daggen.FFT(3)
	p := solve.Problem{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 4}
	prof, err := NewProfile(g, solveTrace(t, p))
	if err != nil {
		t.Fatal(err)
	}
	sum := prof.Summary()
	for _, want := range []string{"model=oneshot", "cost=", "red: peak="} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
	var buf bytes.Buffer
	if err := prof.Timeline(&buf, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#") {
		t.Fatalf("timeline has no bars:\n%s", buf.String())
	}
	// Degenerate parameters.
	var buf2 bytes.Buffer
	if err := prof.Timeline(&buf2, 0); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineEmptyTrace(t *testing.T) {
	g := daggen.Chain(1)
	// A single-node graph pebbled with one compute.
	tr := &pebble.Trace{Model: pebble.NewModel(pebble.Oneshot), R: 1,
		Moves: []pebble.Move{{Kind: pebble.Compute, Node: 0}}}
	prof, err := NewProfile(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prof.Timeline(&buf, 4); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCSV(t *testing.T) {
	g := daggen.Pyramid(2)
	p := solve.Problem{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 3}
	prof, err := NewProfile(g, solveTrace(t, p))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prof.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "step,kind,node,red,blue,scaled_cost" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) != len(prof.Moves)+1 {
		t.Fatalf("csv rows = %d, want %d", len(lines), len(prof.Moves)+1)
	}
}

func TestCompareTraces(t *testing.T) {
	g := daggen.Pyramid(3)
	p := solve.Problem{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 3}
	good, err := solve.TopoBelady(p)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := solve.Topological(p)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := CompareTraces(g, bad.Trace, good.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if diff < 0 {
		t.Fatalf("store-all cheaper than Belady: diff=%d", diff)
	}
	// Corrupt trace is rejected.
	corrupt := &pebble.Trace{Model: good.Trace.Model, R: good.Trace.R,
		Moves: []pebble.Move{{Kind: pebble.Store, Node: 0}}}
	if _, err := CompareTraces(g, corrupt, good.Trace); err == nil {
		t.Fatal("corrupt trace accepted")
	}
}
