package solve

import (
	"errors"
	"testing"
	"time"

	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
)

// TestRootLowerBound checks the instant certificate: positive on
// instances with forced transfers, and never above the true optimum.
func TestRootLowerBound(t *testing.T) {
	p := Problem{G: daggen.Pyramid(4), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	lb, err := RootLowerBound(p, HeuristicAuto)
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 {
		t.Fatalf("root lower bound = %d, want > 0", lb)
	}
	opt, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if scaled := opt.Result.Cost.Scaled(p.Model); lb > scaled {
		t.Fatalf("root lower bound %d exceeds optimum %d", lb, scaled)
	}
}

// TestExactCancelHarvestsLowerBound cancels a serial A* run immediately
// and checks that the harvested frontier bound is a valid certificate:
// positive, and no larger than the true optimum.
func TestExactCancelHarvestsLowerBound(t *testing.T) {
	p := Problem{G: daggen.FFT(3), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	cancel := make(chan struct{})
	var stats ExactStats
	done := make(chan error, 1)
	go func() {
		_, err := Exact(p, ExactOptions{Cancel: cancel, Stats: &stats})
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop the search")
	}
	if stats.LowerBound <= 0 {
		t.Fatalf("harvested lower bound = %d, want > 0", stats.LowerBound)
	}
	const fft3R3Optimum = 31 // cross-checked by the solver test suite
	if stats.LowerBound > fft3R3Optimum {
		t.Fatalf("harvested lower bound %d exceeds optimum %d", stats.LowerBound, fft3R3Optimum)
	}
}

// TestExactCancelEngines cancels each engine mid-run on an instance
// small enough to finish, and checks every outcome is coherent: either
// ErrCanceled with a valid bound, or a completed optimal solve.
func TestExactCancelEngines(t *testing.T) {
	p := Problem{G: daggen.Pyramid(5), Model: pebble.NewModel(pebble.Oneshot), R: 4}
	opt, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	optScaled := opt.Result.Cost.Scaled(p.Model)
	for _, tc := range []struct {
		name string
		opts ExactOptions
	}{
		{"serial", ExactOptions{}},
		{"async", ExactOptions{Parallel: 2}},
		{"sync-rounds", ExactOptions{Parallel: 2, ParallelAlgo: ParallelSyncRounds}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cancel := make(chan struct{})
			close(cancel) // fire before the search even starts
			opts := tc.opts
			var stats ExactStats
			opts.Cancel = cancel
			opts.Stats = &stats
			sol, err := Exact(p, opts)
			if err == nil {
				// The engine may legitimately finish before observing the
				// cancellation; then the answer must be the optimum.
				if got := sol.Result.Cost.Scaled(p.Model); got != optScaled {
					t.Fatalf("finished with cost %d, want %d", got, optScaled)
				}
				return
			}
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if stats.LowerBound < 0 || stats.LowerBound > optScaled {
				t.Fatalf("lower bound %d outside [0, %d]", stats.LowerBound, optScaled)
			}
		})
	}
}

// TestExactDFSCancelAndCallbacks cancels an IDA* run and checks the
// partial certificate: stats carry a lower bound and an incumbent, and
// OnIncumbent delivered a replayable trace for that incumbent.
func TestExactDFSCancelAndCallbacks(t *testing.T) {
	p := Problem{G: daggen.FFT(3), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	cancel := make(chan struct{})
	var stats ExactDFSStats
	var gotInc int64
	var gotMoves []pebble.Move
	passes := 0
	opts := ExactDFSOptions{
		Cancel: cancel,
		Stats:  &stats,
		OnIncumbent: func(scaled int64, moves []pebble.Move) {
			gotInc, gotMoves = scaled, moves
		},
		Progress: func(st ExactDFSStats) { passes++ },
	}
	done := make(chan error, 1)
	go func() {
		_, err := ExactDFS(p, opts)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	close(cancel)
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop the DFS")
	}
	if err == nil {
		return // finished before the cancel landed: nothing to harvest
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if stats.LowerBound <= 0 {
		t.Fatalf("lower bound = %d, want > 0", stats.LowerBound)
	}
	if stats.Incumbent < stats.LowerBound {
		t.Fatalf("incumbent %d below lower bound %d", stats.Incumbent, stats.LowerBound)
	}
	if gotMoves != nil {
		tr := &pebble.Trace{Model: p.Model, R: p.R, Convention: p.Convention, Moves: gotMoves}
		res, rerr := tr.Run(p.G)
		if rerr != nil {
			t.Fatalf("incumbent trace does not replay: %v", rerr)
		}
		if got := res.Cost.Scaled(p.Model); got != gotInc {
			t.Fatalf("incumbent trace costs %d, callback said %d", got, gotInc)
		}
	}
}
