package solve

import (
	"errors"
	"testing"

	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
)

// TestMaxTableBytesAllEngines runs every exact engine on fft(3) R=3
// (whose full solve needs tens of megabytes of table) under a table
// budget far below that, and checks the memory-governance contract: the
// search aborts with ErrMemoryBudget instead of growing without bound,
// and the harvested Stats still carry a certified lower bound — a
// partial interval, not a wasted solve.
func TestMaxTableBytesAllEngines(t *testing.T) {
	p := Problem{G: daggen.FFT(3), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	const fft3R3Optimum = 31 // cross-checked by the solver test suite
	const budget = 1 << 17   // 128 KiB: trips within milliseconds

	for _, tc := range []struct {
		name string
		opts ExactOptions
	}{
		{"serial", ExactOptions{}},
		{"async", ExactOptions{Parallel: 2}},
		{"sync-rounds", ExactOptions{Parallel: 2, ParallelAlgo: ParallelSyncRounds}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			var stats ExactStats
			opts.MaxTableBytes = budget
			opts.Stats = &stats
			_, err := Exact(p, opts)
			if !errors.Is(err, ErrMemoryBudget) {
				t.Fatalf("err = %v, want ErrMemoryBudget", err)
			}
			if stats.LowerBound <= 0 || stats.LowerBound > fft3R3Optimum {
				t.Fatalf("harvested lower bound %d outside (0, %d]", stats.LowerBound, fft3R3Optimum)
			}
		})
	}

	for _, algo := range []DFSAlgorithm{DFSIDAStar, DFSBranchAndBound} {
		t.Run(algo.String(), func(t *testing.T) {
			var stats ExactDFSStats
			_, err := ExactDFS(p, ExactDFSOptions{
				Algorithm:     algo,
				MaxTableBytes: budget,
				Stats:         &stats,
			})
			if !errors.Is(err, ErrMemoryBudget) {
				t.Fatalf("err = %v, want ErrMemoryBudget", err)
			}
			// The interval is still a certificate: the lower bound never
			// overshoots the optimum (fft(3) R=3's root estimate is 0, so
			// branch and bound — which raises lower only via completed
			// IDA* passes it does not have — may stop at 0), and the
			// incumbent is achievable, so it is at least the optimum.
			if stats.LowerBound < 0 || stats.LowerBound > fft3R3Optimum {
				t.Fatalf("harvested lower bound %d outside [0, %d]", stats.LowerBound, fft3R3Optimum)
			}
			if stats.Incumbent < fft3R3Optimum {
				t.Fatalf("incumbent %d below optimum %d", stats.Incumbent, fft3R3Optimum)
			}
		})
	}
}

// TestMaxTableBytesGenerous checks a budget well above the instance's
// needs never trips: the solve completes and proves the optimum.
func TestMaxTableBytesGenerous(t *testing.T) {
	p := Problem{G: daggen.Pyramid(4), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	opt, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := opt.Result.Cost.Scaled(p.Model)
	for _, tc := range []struct {
		name string
		opts ExactOptions
	}{
		{"serial", ExactOptions{}},
		{"async", ExactOptions{Parallel: 2}},
		{"sync-rounds", ExactOptions{Parallel: 2, ParallelAlgo: ParallelSyncRounds}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			opts.MaxTableBytes = 1 << 30
			sol, err := Exact(p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := sol.Result.Cost.Scaled(p.Model); got != want {
				t.Fatalf("cost %d under generous budget, want %d", got, want)
			}
		})
	}
	sol, err := ExactDFS(p, ExactDFSOptions{MaxTableBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Result.Cost.Scaled(p.Model); got != want {
		t.Fatalf("dfs cost %d under generous budget, want %d", got, want)
	}
}
