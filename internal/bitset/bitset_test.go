package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	s := New(130)
	if s.Len() != 130 || s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if !s.Get(0) || !s.Get(64) || !s.Get(129) || s.Get(1) {
		t.Fatal("Get after Set wrong")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
	s.Clear(64)
	if s.Get(64) || s.Count() != 2 {
		t.Fatal("Clear failed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(10).Set(10) },
		func() { New(10).Get(-1) },
		func() { New(10).Clear(11) },
		func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCloneEqual(t *testing.T) {
	s := New(100)
	s.Set(5)
	s.Set(77)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(6)
	if s.Equal(c) {
		t.Fatal("clone shares storage")
	}
	if s.Get(6) {
		t.Fatal("clone mutation leaked")
	}
	other := New(99)
	if s.Equal(other) {
		t.Fatal("different capacities compared equal")
	}
}

func TestReset(t *testing.T) {
	s := New(70)
	s.Set(1)
	s.Set(69)
	s.Reset()
	if s.Count() != 0 {
		t.Fatal("Reset left bits set")
	}
}

func TestKeyDistinguishes(t *testing.T) {
	a := New(128)
	b := New(128)
	a.Set(127)
	if a.Key() == b.Key() {
		t.Fatal("distinct sets share key")
	}
	b.Set(127)
	if a.Key() != b.Key() {
		t.Fatal("equal sets have different keys")
	}
	buf := a.AppendKey(nil)
	if string(buf) != a.Key() {
		t.Fatal("AppendKey differs from Key")
	}
}

func TestForEachOrderAndStop(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 190}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) bool { got = append(got, i); return true })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	s.ForEach(func(i int) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
	sl := s.Slice()
	for i := range want {
		if sl[i] != want[i] {
			t.Fatalf("Slice = %v", sl)
		}
	}
}

func TestString(t *testing.T) {
	s := New(20)
	if s.String() != "{}" {
		t.Fatalf("empty String = %q", s.String())
	}
	s.Set(0)
	s.Set(13)
	if s.String() != "{0, 13}" {
		t.Fatalf("String = %q", s.String())
	}
}

// Property: a Set agrees with a reference map[int]bool under a random
// operation sequence.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := New(n)
		ref := map[int]bool{}
		for op := 0; op < 200; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Set(i)
				ref[i] = true
			case 1:
				s.Clear(i)
				delete(ref, i)
			case 2:
				if s.Get(i) != ref[i] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for _, i := range s.Slice() {
			if !ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Key is injective on the sampled state space (two random sets
// have equal keys iff they are Equal).
func TestQuickKeyInjective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetGet(b *testing.B) {
	s := New(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Set(i & 4095)
		if !s.Get(i & 4095) {
			b.Fatal("lost bit")
		}
	}
}

func BenchmarkKey(b *testing.B) {
	s := New(512)
	for i := 0; i < 512; i += 3 {
		s.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Key()
	}
}

func TestWordOps(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 100, 129} {
		s.Set(i)
	}
	if s.WordLen() != 3 {
		t.Fatalf("WordLen = %d", s.WordLen())
	}
	words := s.AppendWords(nil)
	if len(words) != 3 {
		t.Fatalf("AppendWords len = %d", len(words))
	}
	u := New(130)
	u.LoadWords(words)
	if !u.Equal(s) {
		t.Fatal("LoadWords round-trip mismatch")
	}
	v := New(130)
	v.CopyFrom(s)
	if !v.Equal(s) {
		t.Fatal("CopyFrom mismatch")
	}
	w := New(130)
	w.Set(64)
	if !w.Intersects(s) {
		t.Fatal("Intersects missed shared bit")
	}
	w.Clear(64)
	w.Set(65)
	if w.Intersects(s) {
		t.Fatal("Intersects false positive")
	}
	w.Or(s)
	for _, i := range []int{0, 63, 64, 65, 100, 129} {
		if !w.Get(i) {
			t.Fatalf("Or lost bit %d", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("LoadWords length mismatch not caught")
		}
	}()
	u.LoadWords(words[:2])
}
