package solve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rbpebble/internal/pebble"
)

// Asynchronous HDA*-style parallel exact solver. Like the
// synchronous-rounds engine (parallel.go) the state space is sharded by
// state hash — owner = hashKey(packed state) mod P, each worker owning
// its shard's open list, visited table and node log — but there are no
// global barriers: every worker loops { drain mailboxes, relax, expand,
// flush } continuously, so nobody idles at a round boundary waiting for
// the slowest shard.
//
// Proposals travel through per-edge mailboxes (one deposit box per
// ordered worker pair, so P^2 boxes and no cross-pair contention):
// senders batch proposals per destination and append a batch under a
// short lock; receivers swap the whole box out and relax locally.
//
// Without the global f-min barrier a worker may expand a state before
// its g is settled; when a cheaper path arrives later the owner
// re-relaxes and re-expands (best(ref) update + fresh push), which is
// the standard HDA* re-expansion rule and preserves exactness. Goals
// are never expanded; they update a shared incumbent. A frontier entry
// with f >= the frontier bound — the shared incumbent, lowered further
// by ExactOptions.PruneBound when a warm start supplies one — is
// useless under an admissible heuristic, so workers treat their heap as
// empty once its minimum reaches the bound, discard generated children
// whose g already reaches it at enqueue, and discard arrivals whose
// f = max(parent f, g+h) reaches it at relaxation. Exhaustion under a
// PruneBound with no incumbent found is the parallel analogue of the
// serial engine's ErrBoundExhausted optimality certificate.
//
// Unthrottled HDA* expands speculatively far beyond the true cost
// frontier (measured ~8x extra states on pyramid(5) R=4), so each
// worker continuously publishes its heap minimum in an atomic watermark
// and only expands entries at or below the smallest published f. This
// is not a barrier — nobody waits for a round or for stragglers; a
// blocked worker spins briefly, republishing its own watermark, and the
// holder of the global minimum always proceeds, so plateaus of equal f
// (ubiquitous here: computes and deletes are free in most models)
// expand concurrently across all shards. Entries cheaper than the
// watermark can still be in flight, so the watermark is only a
// throttle; exactness never depends on it.
//
// Separately from the throttle, the engine maintains a CERTIFIED
// mid-flight global f-min, streamed through ExactOptions.Progress: at
// every instant, every open obligation — a heap entry, a proposal
// pending in a mailbox, a proposal buffered in a sender's outbox, or an
// expansion in progress — is covered by a published floor no larger
// than its (eventual) f. Heap entries are covered by their owner's
// published floor; mailbox batches by the box's pending-minimum
// watermark (pendF, the smallest parent f of the batch, which is a
// valid lower bound on each child's completion cost because the
// parent's admissible f never exceeds cost-to-child plus the child's
// own completion cost); outbox batches and in-progress expansions by
// the owner's floor, which is lowered before the covering box watermark
// is consumed and only raised after the covered work is back in a heap.
// The coordinator merges floors and box watermarks (reading floors on
// both sides of the boxes, so neither the deposit nor the drain
// hand-off can slip between the reads), caps the merge by the
// incumbent, and streams the running max — a monotone certified lower
// bound on the optimum, with no stop-and-drain and no round barrier.
//
// Termination is detected with a counting protocol in the style of
// Safra's algorithm, with the coordinator playing the probe: global
// atomic counters of proposals sent and received, plus a per-worker
// passive flag (set only when the worker has no frontier work, empty
// inboxes and flushed outboxes). The coordinator declares termination
// only after reading sent == received between two observations of
// "everyone passive" with the sent counter unchanged — any message
// still in flight either keeps sent > received or bumps sent between
// the two reads. At that point no state with f < incumbent exists
// anywhere, so the incumbent is the proven optimum: the exact analogue
// of the synchronous engine's "incumbent <= global f-min" rule.

const (
	// asyncFlushBatch is the number of proposals buffered per
	// destination before an eager flush (outboxes are always flushed
	// fully at the end of every worker loop turn regardless).
	asyncFlushBatch = 64
	// asyncExpandBatch caps consecutive expansions between mailbox
	// drains, so cross-shard improvements are observed promptly.
	asyncExpandBatch = 256
)

// asyncTestDelay, when non-nil, is called before each state expansion
// with the worker id. Tests inject latency into chosen shards to
// exercise termination detection under pathological imbalance.
var asyncTestDelay func(worker int)

// asyncBatch is one flushed group of proposals (kw key words per
// proposal, in order). Batches change hands whole: the sender builds
// one, deposits the slices, and grabs recycled buffers, so no
// per-proposal copying happens at the mailbox and the steady state
// allocates nothing (receivers return drained buffers to the pool).
type asyncBatch struct {
	meta []proposal
	keys []uint64
	// Watermark summary of the batch, maintained by the sender: the
	// smallest parent f among the proposals (a certified floor on each
	// child's eventual f — see the package comment) and the largest
	// child g.
	minPF int64
	maxG  int64
}

// asyncBatchPool recycles batch buffers between receivers and senders.
var asyncBatchPool = sync.Pool{
	New: func() any {
		return &asyncBatch{
			meta:  make([]proposal, 0, asyncFlushBatch),
			keys:  make([]uint64, 0, asyncFlushBatch*8),
			minPF: costUnreached,
		}
	},
}

// asyncMailbox is one src->dst deposit box. pendF/pendG summarize the
// pending proposals — pendF is the smallest parent f and pendG the
// largest child g. They serve double duty: the throttle counts them so
// work in flight to an unscheduled worker stays visible (acute under
// GOMAXPROCS=1, where only one worker publishes at a time), and the
// certified-floor merge counts them so pending proposals are never
// overlooked by the mid-flight bound.
type asyncMailbox struct {
	mu      sync.Mutex
	batches []*asyncBatch
	pendF   atomic.Int64
	pendG   atomic.Int64
	// pendN counts the pending proposals (snapshot introspection only:
	// the coordinator sums it into per-worker mailbox depths; neither
	// the throttle nor the certified merge reads it).
	pendN atomic.Int64
}

// asyncShared is the state shared by all workers and the coordinator.
type asyncShared struct {
	nw        int
	kw        int
	prune     int64          // ExactOptions.PruneBound (0 = off); immutable
	memBudget int64          // ExactOptions.MaxTableBytes (0 = off); immutable
	boxes     []asyncMailbox // boxes[src*nw+dst]

	sent     atomic.Int64 // proposals deposited
	recv     atomic.Int64 // proposals consumed
	expanded atomic.Int64 // states expanded (for the budget and stats)
	done     atomic.Bool  // optimum proven
	abort    atomic.Bool  // state budget exhausted
	memAbort atomic.Bool  // table memory budget exhausted (abort is also set)
	stop     atomic.Bool  // cancellation requested: drain to quiescence, expand nothing
	passive  []atomic.Bool
	// tableBytes mirrors each worker's table footprint for the
	// coordinator's memory-budget check. Unlike the wstats mirror it is
	// published whenever a budget is set, Progress listener or not.
	tableBytes []atomic.Int64
	fmins      []atomic.Int64 // per-worker published heap minimum (the watermark)
	gtops      []atomic.Int64 // g of the same top entry (for the plateau dive window)
	floors     []atomic.Int64 // per-worker certified floor (heap min lowered to cover in-flight work)
	wmF        atomic.Int64   // cached merged watermark f (throttle fast path)
	wmG        atomic.Int64   // cached merged watermark g

	incMu    sync.Mutex
	incG     atomic.Int64
	incShard int32
	incNode  int32

	// wantStats gates the per-worker stat mirror below: workers copy
	// their private counters into these atomics once per loop turn (in
	// publish) only when a Progress listener wants snapshots, so a
	// listener-free run pays one predictable branch per turn.
	wantStats bool
	wstats    []asyncWorkerStats
}

// asyncWorkerStats is one worker's published introspection mirror,
// read by the coordinator when it builds a snapshot.
type asyncWorkerStats struct {
	expanded   atomic.Int64
	pushed     atomic.Int64
	openLen    atomic.Int64
	tableCount atomic.Int64
	tableBytes atomic.Int64
	tableSlots atomic.Int64
}

// improve lowers the shared incumbent (cold path: goals are rare).
func (sh *asyncShared) improve(g int64, shard, node int32) {
	sh.incMu.Lock()
	if g < sh.incG.Load() {
		sh.incG.Store(g)
		sh.incShard, sh.incNode = shard, node
	}
	sh.incMu.Unlock()
}

// frontierBound returns the exclusive upper bound on useful frontier f
// values: the shared incumbent, lowered further by the caller's
// PruneBound. Entries, proposals and arrivals at or beyond it cannot
// improve on what is already known.
func (sh *asyncShared) frontierBound() int64 {
	b := sh.incG.Load()
	if sh.prune > 0 && sh.prune < b {
		b = sh.prune
	}
	return b
}

// certifiedMin merges the per-worker floors, the mailbox pending
// watermarks and the incumbent into the certified global minimum: a
// lower bound on the optimum valid at some instant during the call.
// Floors are read on both sides of the boxes: a deposit lowers the box
// watermark before its sender's floor rises (so the first floor pass
// covers it), and a drain lowers the receiver's floor before the box
// watermark clears (so the second floor pass covers it) — whichever
// side of the hand-off the box read lands on, one floor pass saw a
// covering value.
func (sh *asyncShared) certifiedMin() int64 {
	m := int64(costUnreached)
	for i := range sh.floors {
		if v := sh.floors[i].Load(); v < m {
			m = v
		}
	}
	for i := range sh.boxes {
		if v := sh.boxes[i].pendF.Load(); v < m {
			m = v
		}
	}
	for i := range sh.floors {
		if v := sh.floors[i].Load(); v < m {
			m = v
		}
	}
	if g := sh.incG.Load(); g < m {
		m = g
	}
	return m
}

// asyncWorker is one shard owner of the async engine.
type asyncWorker struct {
	id    int32
	ctx   *searchCtx
	table *stateTable // payloadWithH: best cost + cached heuristic per ref
	open  bucketQueue
	nodes []parNode

	out      []*asyncBatch // out[dst], buffered until flush
	outMin   int64         // min parent f across unflushed outbox batches
	expanded int           // local counters, aggregated into stats at the end
	pushed   int

	lastF, lastG int64 // last published watermark values (-1: none yet)
	lastFloor    int64 // last published certified floor
	wmAge        int   // pops since the last full watermark recompute
}

func exactAsync(p Problem, opts ExactOptions, start *pebble.State, maxStates int) (Solution, error) {
	nw := opts.Parallel
	kw := start.PackedWords()
	base := newSearchCtx(p, opts, start)
	sh := &asyncShared{
		nw:         nw,
		kw:         kw,
		prune:      opts.PruneBound,
		memBudget:  opts.MaxTableBytes,
		boxes:      make([]asyncMailbox, nw*nw),
		passive:    make([]atomic.Bool, nw),
		fmins:      make([]atomic.Int64, nw),
		gtops:      make([]atomic.Int64, nw),
		floors:     make([]atomic.Int64, nw),
		tableBytes: make([]atomic.Int64, nw),
	}
	sh.wantStats = opts.Progress != nil
	if sh.wantStats {
		sh.wstats = make([]asyncWorkerStats, nw)
	}
	sh.incG.Store(costUnreached)
	for i := range sh.fmins {
		sh.fmins[i].Store(costUnreached)
		sh.floors[i].Store(costUnreached)
	}
	for i := range sh.boxes {
		sh.boxes[i].pendF.Store(costUnreached)
	}
	workers := make([]*asyncWorker, nw)
	for i := range workers {
		ctx := base
		if i > 0 {
			ctx = base.cloneForWorker(start)
		}
		w := &asyncWorker{
			id:        int32(i),
			ctx:       ctx,
			table:     newStateTable(kw, payloadWithH, 256),
			out:       make([]*asyncBatch, nw),
			outMin:    costUnreached,
			lastF:     -1,
			lastG:     -1,
			lastFloor: costUnreached,
		}
		for d := range w.out {
			w.out[d] = asyncBatchPool.Get().(*asyncBatch)
		}
		workers[i] = w
	}

	var lowerBound int64
	report := func() {
		if opts.Stats != nil {
			var st ExactStats
			for _, w := range workers {
				st.Expanded += w.expanded
				st.Pushed += w.pushed
				st.Distinct += w.table.count()
				st.TableBytes += w.table.bytes()
			}
			st.LowerBound = lowerBound
			*opts.Stats = st
		}
	}

	rootKey := start.AppendPacked(nil)
	rootHash := hashKey(rootKey)
	h0, dead := base.lb.estimate(start)
	if dead {
		report()
		return Solution{}, ErrInfeasible
	}
	rw := workers[rootHash%uint64(nw)]
	rootRef, _ := rw.table.lookupOrAdd(rootKey, rootHash)
	rw.table.setBest(rootRef, 0)
	rw.table.setH(rootRef, h0)
	rw.nodes = append(rw.nodes, parNode{parentShard: -1, parentNode: -1, ref: rootRef})
	rw.open.push(heapEntry{f: h0, g: 0, node: 0})
	rw.pushed = 1
	// Publish the root floor before any worker runs, so the certified
	// merge never observes an all-empty frontier while the root entry is
	// the only obligation.
	rw.lastFloor = h0
	sh.floors[rw.id].Store(h0)

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *asyncWorker) {
			defer wg.Done()
			w.run(sh)
		}(w)
	}

	// Certified running-max lower bound, seeded from the root estimate
	// and the caller's already-certified floor (warm start). The
	// coordinator raises it from the in-flight-aware certified merge and
	// streams every improvement through Progress — the mid-flight bound
	// the anytime orchestrator consumes under Workers > 1.
	certLower := max(h0, opts.InitialLowerBound)

	// Coordinator: poll the state budget, watch for cancellation, raise
	// and stream the certified bound, and run the termination probe. The
	// poll interval escalates so that long solves are not taxed by
	// coordinator wakeups (the workers keep the watermark cache fresh
	// themselves); short solves still terminate within ~20us. A
	// cancellation does not kill the workers outright: it flips the stop
	// flag so they cease expanding but keep draining mailboxes, and the
	// ordinary counting probe then detects the quiescent point — at
	// which every generated proposal sits relaxed in some shard heap, so
	// the heap tops are the full open frontier and their minimum is the
	// final (tightest) certified lower bound on the optimum.
	var sampler *progressSampler
	if opts.Progress != nil {
		sampler = newProgressSampler(opts.ProgressEvery)
	}
	coSleep := 20 * time.Microsecond
	for {
		if sh.expanded.Load() > int64(maxStates) {
			sh.abort.Store(true)
			break
		}
		if sh.memBudget > 0 {
			var tb int64
			for i := range sh.tableBytes {
				tb += sh.tableBytes[i].Load()
			}
			if tb > sh.memBudget {
				sh.memAbort.Store(true)
				sh.abort.Store(true)
				break
			}
		}
		if opts.Cancel != nil && !sh.stop.Load() {
			select {
			case <-opts.Cancel:
				sh.stop.Store(true)
			default:
			}
		}
		improved := false
		if v := sh.certifiedMin(); v != costUnreached && v > certLower {
			certLower = v
			improved = true
		}
		// Snapshot on every certified-bound improvement (the anytime
		// layer wants those promptly) and on the time cadence between
		// improvements, so a long plateau still streams live stats.
		if sampler != nil && (improved || sampler.due()) {
			opts.Progress(sh.snapshot(sampler, certLower))
		}
		if sh.terminated() {
			sh.done.Store(true)
			break
		}
		time.Sleep(coSleep)
		if coSleep < 200*time.Microsecond {
			coSleep += 10 * time.Microsecond
		}
	}
	wg.Wait()
	if sh.abort.Load() {
		// The workers quit mid-flight, so mailbox batches may still hold
		// unrelaxed proposals — but the streamed running max was
		// certified at instants when they were all accounted for, so it
		// survives the abort.
		lowerBound = certLower
		report()
		if sh.memAbort.Load() {
			return Solution{}, fmt.Errorf("%w: over budget %d after %d states (lower bound %d)",
				ErrMemoryBudget, sh.memBudget, sh.expanded.Load(), lowerBound)
		}
		return Solution{}, fmt.Errorf("%w: %d states", ErrStateLimit, maxStates)
	}
	incG := sh.incG.Load()
	minTop := int64(costUnreached)
	for _, w := range workers {
		if w.open.len() > 0 {
			if f, _ := w.open.top(); f < minTop {
				minTop = f
			}
		}
	}
	// The solve is finished (rather than cut mid-flight) when the
	// frontier can no longer improve on what is known: emptied past the
	// incumbent, exhausted entirely, or — under a PruneBound with no
	// incumbent — emptied past the bound, which is the exhaustion
	// certificate.
	finished := (incG != costUnreached && minTop >= incG) ||
		(incG == costUnreached && minTop == costUnreached) ||
		(sh.prune > 0 && incG == costUnreached && minTop >= sh.prune)
	if sh.stop.Load() && !finished {
		// Canceled before the optimum was proven: harvest the certified
		// frontier bound at quiescence, never below the streamed running
		// max.
		lowerBound = max(certLower, min(minTop, incG))
		report()
		return Solution{}, fmt.Errorf("%w after %d states (lower bound %d)", ErrCanceled, sh.expanded.Load(), lowerBound)
	}
	if incG == costUnreached {
		if sh.prune > 0 {
			// Every branch was cut at f >= PruneBound and the mailboxes
			// drained to quiescence: no completion below the bound
			// exists. This is the async analogue of the serial engine's
			// bound-exhaustion certificate — the optimum is at least
			// PruneBound, so a warm-started refinement has just proven
			// its cached incumbent optimal.
			lowerBound = max(certLower, sh.prune)
			report()
			return Solution{}, fmt.Errorf("%w: no completion below bound %d", ErrBoundExhausted, sh.prune)
		}
		report()
		return Solution{}, errors.New("solve: state space exhausted without completing (unreachable for feasible R)")
	}
	lowerBound = incG // proven optimal
	report()

	logs := make([][]parNode, nw)
	for i, w := range workers {
		logs[i] = w.nodes
	}
	return shardTrace(p, logs, sh.incShard, sh.incNode), nil
}

// terminated runs one round of the counting probe: everyone passive,
// sent == received, and sent unchanged across a second passivity check.
func (sh *asyncShared) terminated() bool {
	s1 := sh.sent.Load()
	if sh.recv.Load() != s1 {
		return false
	}
	for i := range sh.passive {
		if !sh.passive[i].Load() {
			return false
		}
	}
	return sh.sent.Load() == s1
}

// run is the worker main loop.
func (w *asyncWorker) run(sh *asyncShared) {
	spins := 0
	backoff := time.Microsecond
	// wait backs off exponentially so that idle workers get out of the
	// scheduler's way instead of stealing timeslices from the watermark
	// holder (which is what turns a 1-core run into a spin contest).
	wait := func() {
		if spins++; spins < 4 {
			runtime.Gosched()
			return
		}
		time.Sleep(backoff)
		if backoff < 256*time.Microsecond {
			backoff *= 2
		}
	}
	for {
		if sh.done.Load() || sh.abort.Load() {
			return
		}
		got := w.drain(sh) + w.drainSelf(sh)
		did := w.expand(sh)
		w.flushAll(sh)
		w.publish(sh)
		if got > 0 || did > 0 {
			spins, backoff = 0, time.Microsecond
			continue
		}
		if !sh.stop.Load() && w.open.len() > 0 {
			if f, _ := w.open.top(); f < sh.frontierBound() {
				// Blocked behind the watermark: useful frontier exists but
				// a cheaper one lives on another shard. Stay active (never
				// passive) and retry; the watermark holder always
				// advances. (Under a stop request the frontier is
				// deliberately left unexpanded, so fall through to passive
				// instead: quiescence is what the coordinator is waiting
				// to observe.)
				wait()
				continue
			}
		}
		// Out of useful work entirely: go passive until a proposal
		// arrives (the frontier cannot regrow on its own).
		sh.passive[w.id].Store(true)
		for {
			if sh.done.Load() || sh.abort.Load() {
				return
			}
			if w.inboxPending(sh) {
				sh.passive[w.id].Store(false)
				spins, backoff = 0, time.Microsecond
				break
			}
			wait()
		}
	}
}

// publish stores this worker's current heap top (f and g) in its
// watermark slots (skipped when unchanged since the last publish) and
// refreshes its certified floor to cover the heap and any still-
// unflushed outbox work (the self outbox can hold proposals between
// loop turns).
func (w *asyncWorker) publish(sh *asyncShared) {
	f, g := int64(costUnreached), int64(0)
	if w.open.len() > 0 {
		f, g = w.open.top()
	}
	w.publishFloor(sh, min(f, w.outMin))
	if sh.memBudget > 0 {
		sh.tableBytes[w.id].Store(w.table.bytes())
	}
	if sh.wantStats {
		ws := &sh.wstats[w.id]
		ws.expanded.Store(int64(w.expanded))
		ws.pushed.Store(int64(w.pushed))
		ws.openLen.Store(int64(w.open.len()))
		ws.tableCount.Store(int64(w.table.count()))
		ws.tableBytes.Store(w.table.bytes())
		ws.tableSlots.Store(int64(len(w.table.slots)))
	}
	if f == w.lastF && g == w.lastG {
		return
	}
	w.lastF, w.lastG = f, g
	sh.gtops[w.id].Store(g)
	sh.fmins[w.id].Store(f)
}

// publishFloor stores this worker's certified floor (only the owner
// ever writes it, so the cached last value is authoritative).
func (w *asyncWorker) publishFloor(sh *asyncShared, v int64) {
	if v != w.lastFloor {
		w.lastFloor = v
		sh.floors[w.id].Store(v)
	}
}

// recomputeOutMin refreshes the unflushed-outbox floor component after
// a batch left the outboxes (flush hand-off or self drain).
func (w *asyncWorker) recomputeOutMin() {
	m := int64(costUnreached)
	for _, ba := range w.out {
		if ba.minPF < m {
			m = ba.minPF
		}
	}
	w.outMin = m
}

// asyncDiveWindow is the g-window within an f-plateau: a worker expands
// a plateau entry only when its g is within the window of the deepest
// published plateau entry. Zero-cost moves (computes and deletes in
// most models) make the goal's f-level one huge plateau; the serial
// queue's deeper-g-first tie-break dives straight through it, and the
// window makes the sharded search follow the same dive as a relay
// instead of flooding the plateau breadth-first, while still letting
// several shards work the dive front concurrently.
const asyncDiveWindow = 2

// watermark recomputes the merged watermark — the smallest published f
// across shard heaps and pending mailboxes, and the largest g published
// at that f — and refreshes the cached copy. Expansion reads only the
// cache (two atomic loads per pop); workers run the full scan whenever
// the cache tells them to block (it may be stale-low after the front
// advanced) and unconditionally every 64 pops (a stale-high cache
// would let them overshoot silently), which bounds the cache staleness
// in both directions (staleness is harmless regardless: the watermark
// is a throttle, not a correctness gate — the certified bound is
// maintained separately via the floors).
func (sh *asyncShared) watermark() (f, g int64) {
	f = costUnreached
	for i := range sh.fmins {
		fi := sh.fmins[i].Load()
		gi := sh.gtops[i].Load()
		if fi < f {
			f, g = fi, gi
		} else if fi == f && gi > g {
			g = gi
		}
	}
	for i := range sh.boxes {
		fi := sh.boxes[i].pendF.Load()
		if fi == costUnreached {
			continue
		}
		gi := sh.boxes[i].pendG.Load()
		if fi < f {
			f, g = fi, gi
		} else if fi == f && gi > g {
			g = gi
		}
	}
	sh.wmF.Store(f)
	sh.wmG.Store(g)
	return f, g
}

// inboxPending reports whether any mailbox addressed to this worker
// holds proposals (lock-free peek on the pending watermark; a false
// negative is retried, a false positive drains empty).
func (w *asyncWorker) inboxPending(sh *asyncShared) bool {
	for src := 0; src < sh.nw; src++ {
		if sh.boxes[src*sh.nw+int(w.id)].pendF.Load() != costUnreached {
			return true
		}
	}
	return false
}

// drain consumes every pending proposal addressed to this worker,
// relaxing each into the local table and open list, and returns how
// many proposals it consumed. Before a box's pending watermark is
// cleared the worker lowers its own floor to the box's value, so the
// proposals stay covered by the certified merge while they move from
// the box into the heap.
func (w *asyncWorker) drain(sh *asyncShared) int {
	total := 0
	for src := 0; src < sh.nw; src++ {
		b := &sh.boxes[src*sh.nw+int(w.id)]
		if b.pendF.Load() == costUnreached {
			continue // lock-free empty peek (a racing deposit is seen next turn)
		}
		b.mu.Lock()
		// The watermark must be re-read under the lock: a deposit can
		// land between the peek above and here, lowering pendF below the
		// peeked value — and that batch is about to be taken too, so the
		// floor must cover it before the watermark is cleared (flush
		// updates pendF under this same lock, so this read is the true
		// minimum over every batch being taken).
		w.publishFloor(sh, min(w.lastFloor, b.pendF.Load()))
		batches := b.batches
		b.batches = nil
		b.pendF.Store(costUnreached)
		b.pendG.Store(0)
		b.pendN.Store(0)
		b.mu.Unlock()
		for _, ba := range batches {
			w.relaxBatch(sh, ba.meta, ba.keys)
			sh.recv.Add(int64(len(ba.meta)))
			total += len(ba.meta)
			ba.meta, ba.keys = ba.meta[:0], ba.keys[:0]
			ba.minPF, ba.maxG = costUnreached, 0
			asyncBatchPool.Put(ba)
		}
	}
	return total
}

// relaxBatch merges one mailbox batch (same layout as the synchronous
// engine's relax: kw key words per proposal, in order). The pushed
// priority is the pathmax f = max(parent f, g + h): the parent's
// admissible f never exceeds the cost of any completion through the
// child, so raising the child to it keeps every certificate valid while
// tightening both the queue order and the bound-discard below.
func (w *asyncWorker) relaxBatch(sh *asyncShared, meta []proposal, keys []uint64) {
	kw := w.table.kw
	for i, pr := range meta {
		key := keys[i*kw : (i+1)*kw]
		ref, isNew := w.table.lookupOrAdd(key, pr.hash)
		if isNew {
			w.ctx.scratch.RestorePacked(key)
			h, dead := w.ctx.lb.estimate(w.ctx.scratch)
			w.table.setH(ref, h)
			if dead {
				w.table.setBest(ref, costDead)
			}
		}
		if w.table.best(ref) <= pr.g {
			continue
		}
		f := pr.g + w.table.h(ref)
		if pr.pf > f {
			f = pr.pf
		}
		if f >= sh.frontierBound() {
			// No completion through this arrival can improve on the
			// incumbent or stay below the caller's PruneBound. Leave best
			// at costUnreached so a strictly cheaper arrival may still
			// reopen the state (its h stays cached for that reopening).
			continue
		}
		w.table.setBest(ref, pr.g)
		w.nodes = append(w.nodes, parNode{
			parentShard: pr.srcShard, parentNode: pr.parentNode,
			ref: ref, move: pr.move,
		})
		w.open.push(heapEntry{f: f, g: pr.g, node: int32(len(w.nodes) - 1)})
		w.pushed++
	}
}

// expand pops up to asyncExpandBatch useful entries, generating
// successor proposals into the outboxes (flushed eagerly per
// destination once a batch accumulates). Returns the number of entries
// it retired (including stale pops, which also shrink the frontier).
func (w *asyncWorker) expand(sh *asyncShared) int {
	c := w.ctx
	did := 0
	for did < asyncExpandBatch && w.open.len() > 0 {
		if sh.stop.Load() {
			break // canceled: stop generating work, keep draining
		}
		top, topG := w.open.top()
		// Refresh the certified floor first: it must cover the entry
		// about to be popped (and the children it will buffer) for the
		// whole expansion.
		w.publishFloor(sh, min(top, w.outMin))
		bound := sh.frontierBound()
		if top >= bound {
			// Under an admissible bound nothing at or beyond the
			// incumbent (or the caller's PruneBound) can improve it: the
			// frontier is exhausted.
			break
		}
		// Throttle on the watermark (which includes our own top, so the
		// global minimum holder always proceeds).
		if top != w.lastF || topG != w.lastG {
			w.lastF, w.lastG = top, topG
			sh.gtops[w.id].Store(topG)
			sh.fmins[w.id].Store(top)
		}
		wmF, wmG := sh.wmF.Load(), sh.wmG.Load()
		if w.wmAge++; w.wmAge >= 64 || top > wmF || topG+asyncDiveWindow < wmG {
			// Full scan when the cache says block (it may simply be
			// stale after the front advanced) and periodically (a
			// too-permissive stale cache means silent overshoot).
			w.wmAge = 0
			wmF, wmG = sh.watermark()
		}
		if top > wmF || topG+asyncDiveWindow < wmG {
			break
		}
		e := w.open.pop()
		did++
		nd := w.nodes[e.node]
		if e.g > w.table.best(nd.ref) {
			continue // stale
		}
		if asyncTestDelay != nil {
			asyncTestDelay(int(w.id))
		}
		key := w.table.key(nd.ref)
		c.scratch.RestorePacked(key)
		if c.scratch.Complete() {
			sh.improve(e.g, w.id, e.node)
			continue
		}
		w.expanded++
		if w.expanded&63 == 0 {
			sh.expanded.Add(64) // batched: the budget check tolerates slack
			if sh.abort.Load() {
				return did
			}
		}
		c.moveBuf = c.moveBuf[:0]
		c.appendMoves(c.scratch, key)
		for _, m := range c.moveBuf {
			undo, err := c.scratch.ApplyForUndo(m)
			if err != nil {
				panic("solve: appendMoves emitted illegal move: " + err.Error())
			}
			childG := e.g + c.moveCost(m)
			if childG >= bound {
				// Enqueue-side discard: h >= 0, so the child's f already
				// reaches the bound — it could never be popped. Dropping
				// it here saves the mailbox round-trip entirely.
				c.scratch.Undo(undo)
				continue
			}
			c.keyBuf = c.scratch.AppendPacked(c.keyBuf[:0])
			ch := hashKey(c.keyBuf)
			d := int(ch % uint64(sh.nw))
			ba := w.out[d]
			ba.meta = append(ba.meta, proposal{
				hash: ch, g: childG, pf: e.f, srcShard: w.id, parentNode: e.node, move: m,
			})
			ba.keys = append(ba.keys, c.keyBuf...)
			if e.f < ba.minPF {
				ba.minPF = e.f
			}
			if e.f < w.outMin {
				w.outMin = e.f
			}
			if childG > ba.maxG {
				ba.maxG = childG
			}
			c.scratch.Undo(undo)
			if d != int(w.id) && len(ba.meta) >= asyncFlushBatch {
				w.flush(sh, d)
			}
		}
	}
	return did
}

// drainSelf relaxes the proposals this worker buffered for its own
// shard. They are never relaxed inline during expansion: relaxBatch
// restores arbitrary states onto the shared scratch, which would
// corrupt the apply/undo chain mid-expansion. The floor stays at or
// below the batch minimum throughout (outMin covers the batch until it
// is reset, and the floor is only raised later, after the entries are
// in the heap).
func (w *asyncWorker) drainSelf(sh *asyncShared) int {
	ba := w.out[w.id]
	n := len(ba.meta)
	if n == 0 {
		return 0
	}
	w.relaxBatch(sh, ba.meta, ba.keys)
	ba.meta, ba.keys = ba.meta[:0], ba.keys[:0]
	ba.minPF, ba.maxG = costUnreached, 0
	w.recomputeOutMin()
	return n
}

// flush deposits the buffered proposals for destination d (never the
// worker's own shard — see drainSelf). The batch changes hands whole;
// a recycled buffer replaces it on the sender. The box watermark is
// lowered under the lock before the sender's own floor component is
// allowed to rise (recomputeOutMin), so the batch is covered by one or
// the other at every instant.
func (w *asyncWorker) flush(sh *asyncShared, d int) {
	ba := w.out[d]
	if len(ba.meta) == 0 {
		return
	}
	n := int64(len(ba.meta)) // before the deposit: ba changes hands there
	b := &sh.boxes[int(w.id)*sh.nw+d]
	b.mu.Lock()
	b.batches = append(b.batches, ba)
	if ba.minPF < b.pendF.Load() {
		b.pendF.Store(ba.minPF)
	}
	if ba.maxG > b.pendG.Load() {
		b.pendG.Store(ba.maxG)
	}
	b.pendN.Add(n)
	b.mu.Unlock()
	// Counted after the deposit: a probe that misses this increment
	// sees either recv < sent or a sent change on its re-read, and a
	// worker is only observed passive after its flush completes.
	sh.sent.Add(n)
	w.out[d] = asyncBatchPool.Get().(*asyncBatch)
	w.recomputeOutMin()
}

// flushAll publishes every cross-shard outbox (required before going
// passive; the self outbox is empty by then, drained each loop turn).
func (w *asyncWorker) flushAll(sh *asyncShared) {
	for d := 0; d < sh.nw; d++ {
		if d != int(w.id) {
			w.flush(sh, d)
		}
	}
}

// snapshot assembles the coordinator-side introspection snapshot from
// the workers' published stat mirrors, the watermark/floor slots and
// the mailbox pending counters. Everything read here is an atomic the
// workers keep fresh (publish runs once per worker loop turn), so the
// snapshot is a consistent-enough instant without stopping anyone.
// Only called with wantStats set (wstats non-nil).
func (sh *asyncShared) snapshot(s *progressSampler, lower int64) ExactProgress {
	expanded := int(sh.expanded.Load())
	elapsed, rate := s.tick(expanded)
	pr := ExactProgress{
		Engine:     "async-hda",
		Expanded:   expanded,
		LowerBound: lower,
		Elapsed:    elapsed,
		Rate:       rate,
		FrontierF:  -1,
		FrontierG:  -1,
		SafraSent:  sh.sent.Load(),
		SafraRecv:  sh.recv.Load(),
		Workers:    make([]WorkerProgress, sh.nw),
	}
	var slots int64
	for i := 0; i < sh.nw; i++ {
		ws := &sh.wstats[i]
		wp := WorkerProgress{
			ID:         i,
			Expanded:   int(ws.expanded.Load()),
			Pushed:     int(ws.pushed.Load()),
			OpenSize:   int(ws.openLen.Load()),
			HeapMinF:   normF(sh.fmins[i].Load()),
			Floor:      normF(sh.floors[i].Load()),
			TableCount: int(ws.tableCount.Load()),
			TableBytes: ws.tableBytes.Load(),
			Passive:    sh.passive[i].Load(),
		}
		for src := 0; src < sh.nw; src++ {
			wp.MailboxDepth += int(sh.boxes[src*sh.nw+i].pendN.Load())
		}
		pr.Pushed += wp.Pushed
		pr.Distinct += wp.TableCount
		pr.OpenSize += wp.OpenSize
		pr.TableBytes += wp.TableBytes
		slots += ws.tableSlots.Load()
		if f := sh.fmins[i].Load(); f != costUnreached && (pr.FrontierF < 0 || f < pr.FrontierF) {
			pr.FrontierF = f
			pr.FrontierG = sh.gtops[i].Load()
		}
		pr.Workers[i] = wp
	}
	if slots > 0 {
		pr.TableLoad = float64(pr.Distinct) / float64(slots)
	}
	return pr
}

// shardTrace reconstructs the incumbent's move chain across the
// per-shard node logs (shared by the sync and async engines).
func shardTrace(p Problem, logs [][]parNode, shard, node int32) Solution {
	var rev []pebble.Move
	s, n := shard, node
	for {
		nd := logs[s][n]
		if nd.parentShard < 0 {
			break
		}
		rev = append(rev, nd.move)
		s, n = nd.parentShard, nd.parentNode
	}
	moves := make([]pebble.Move, len(rev))
	for i := range rev {
		moves[i] = rev[len(rev)-1-i]
	}
	tr := &pebble.Trace{Model: p.Model, R: p.R, Convention: p.Convention, Moves: moves}
	return verify(p, tr)
}
