package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%d", i)
	}
	return out
}

// TestOwnersCompleteAndDeterministic: Owners lists every member
// exactly once, in an order that is stable across calls and across
// rings built with different Add orders (proxy replicas must agree).
func TestOwnersCompleteAndDeterministic(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1"}
	r1 := NewRing(0, members...)
	r2 := NewRing(0, "d:1", "b:1", "a:1", "c:1")
	for _, k := range keys(200) {
		o1 := r1.Owners(k, len(members))
		if len(o1) != len(members) {
			t.Fatalf("owners(%s) = %v, want all %d members", k, o1, len(members))
		}
		seen := map[string]bool{}
		for _, m := range o1 {
			if seen[m] {
				t.Fatalf("duplicate owner %s for %s", m, k)
			}
			seen[m] = true
		}
		if o2 := r2.Owners(k, len(members)); !reflect.DeepEqual(o1, o2) {
			t.Fatalf("add order changed routing for %s: %v vs %v", k, o1, o2)
		}
		if o1b := r1.Owners(k, len(members)); !reflect.DeepEqual(o1, o1b) {
			t.Fatalf("owners not stable for %s", k)
		}
	}
}

// TestConsistentRemapping is the consistent-hashing property: removing
// one member only remaps the keys it owned.
func TestConsistentRemapping(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	r := NewRing(0, members...)
	before := map[string]string{}
	for _, k := range keys(2000) {
		before[k] = r.Owners(k, 1)[0]
	}
	r.Remove("c:1")
	moved := 0
	for k, owner := range before {
		now := r.Owners(k, 1)[0]
		if owner == "c:1" {
			if now == "c:1" {
				t.Fatalf("removed member still owns %s", k)
			}
			moved++
			continue
		}
		if now != owner {
			t.Fatalf("key %s not owned by removed member moved %s -> %s", k, owner, now)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys (degenerate ring)")
	}
}

// TestBalance: virtual nodes keep the load split roughly even.
func TestBalance(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1"}
	r := NewRing(0, members...)
	counts := map[string]int{}
	const n = 9000
	for _, k := range keys(n) {
		counts[r.Owners(k, 1)[0]]++
	}
	for m, c := range counts {
		if c < n/10 {
			t.Fatalf("member %s owns only %d/%d keys: imbalanced ring (%v)", m, c, n, counts)
		}
	}
}

// TestUnhealthyMembersRankLast: a down member never leads the owner
// list while anyone is up, but remains a last-resort candidate.
func TestUnhealthyMembersRankLast(t *testing.T) {
	r := NewRing(0, "a:1", "b:1", "c:1")
	r.SetHealthy("b:1", false)
	for _, k := range keys(300) {
		owners := r.Owners(k, 3)
		if owners[0] == "b:1" || owners[1] == "b:1" {
			t.Fatalf("down member ranked %v for %s", owners, k)
		}
		if owners[2] != "b:1" {
			t.Fatalf("down member missing from owner list for %s: %v", k, owners)
		}
	}
	// All down: the ring still yields a routing order.
	r.SetHealthy("a:1", false)
	r.SetHealthy("c:1", false)
	if owners := r.Owners("k", 3); len(owners) != 3 {
		t.Fatalf("all-down ring returned %v", owners)
	}
}

// TestRendezvousTieBreak (white-box): virtual nodes that collide on
// the ring are ordered per key by rendezvous weight, not by a fixed
// member order.
func TestRendezvousTieBreak(t *testing.T) {
	r := &Ring{vnodes: 1, healthy: map[string]bool{"a:1": true, "b:1": true}}
	// Two colliding points: every key lands on this hash run, and the
	// winner must be the higher rendezvous weight for that key.
	r.points = []point{{h: 42, member: "a:1"}, {h: 42, member: "b:1"}}
	winners := map[string]bool{}
	for _, k := range keys(64) {
		owners := r.Owners(k, 2)
		want := "a:1"
		if rendezvous("b:1", k) > rendezvous("a:1", k) {
			want = "b:1"
		}
		if owners[0] != want {
			t.Fatalf("tie for %s broken to %s, rendezvous says %s", k, owners[0], want)
		}
		winners[owners[0]] = true
	}
	if len(winners) != 2 {
		t.Fatalf("tie-break never alternated across 64 keys: %v", winners)
	}
}
