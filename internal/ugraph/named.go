package ugraph

// Petersen returns the Petersen graph (10 vertices, 15 edges): outer
// cycle 0-4, inner pentagram 5-9, spokes i—i+5. It is hypohamiltonian —
// no Hamiltonian cycle, but it does contain a Hamiltonian path — making
// it a classic stress instance for the Theorem 2 reduction.
func Petersen() *Graph {
	g := New(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)     // outer cycle
		g.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		g.AddEdge(i, 5+i)         // spokes
	}
	return g
}

// Hypercube returns the d-dimensional hypercube graph Q_d on 2^d
// vertices: u and v are adjacent iff they differ in exactly one bit.
// Q_d is Hamiltonian for every d >= 2 (Gray codes).
func Hypercube(d int) *Graph {
	if d < 1 {
		panic("ugraph: Hypercube needs d >= 1")
	}
	n := 1 << uint(d)
	g := New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < d; b++ {
			v := u ^ (1 << uint(b))
			if u < v {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// GridGraph returns the rows x cols grid graph (king-less, rook-less:
// only horizontal and vertical neighbors). It has a Hamiltonian path for
// all sizes (boustrophedon).
func GridGraph(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic("ugraph: GridGraph needs positive dimensions")
	}
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Wheel returns the wheel graph W_n: a cycle of n-1 vertices (1..n-1)
// plus a hub (0) adjacent to all of them. Hamiltonian for n >= 4.
func Wheel(n int) *Graph {
	if n < 4 {
		panic("ugraph: Wheel needs n >= 4")
	}
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
		next := i + 1
		if next == n {
			next = 1
		}
		g.AddEdge(i, next)
	}
	return g
}
