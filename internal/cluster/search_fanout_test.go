package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rbpebble/internal/service"
)

// TestDebugJobSearchFanout: GET /debug/jobs/{id}/search on the proxy
// must find the one node that owns the job (the others 404), relay its
// snapshot, and stamp the owning member into the body and the
// X-Rbproxy-Node header. A job no node knows stays a 404.
func TestDebugJobSearchFanout(t *testing.T) {
	node := func(jobID string) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, `{"ok":true}`)
		})
		mux.HandleFunc("GET /debug/jobs/{id}/search", func(w http.ResponseWriter, r *http.Request) {
			if r.PathValue("id") != jobID {
				w.WriteHeader(http.StatusNotFound)
				fmt.Fprint(w, `{"error":"unknown job"}`)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(service.SearchDebugResponse{Job: jobID, Status: "running"})
		})
		return httptest.NewServer(mux)
	}
	n1 := node("job-aaa-1")
	defer n1.Close()
	n2 := node("job-bbb-1")
	defer n2.Close()

	owner := strings.TrimPrefix(n2.URL, "http://")
	members := []string{strings.TrimPrefix(n1.URL, "http://"), owner}
	p := NewProxy(ProxyConfig{Members: members, ProbeInterval: -1})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/jobs/job-bbb-1/search")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fan-out status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Rbproxy-Node"); got != owner {
		t.Errorf("X-Rbproxy-Node = %q, want %q", got, owner)
	}
	var body service.SearchDebugResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Job != "job-bbb-1" || body.Status != "running" || body.Node != owner {
		t.Errorf("relayed body = %+v, want job-bbb-1 running on %s", body, owner)
	}

	resp, err = http.Get(ts.URL + "/debug/jobs/job-nowhere/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-everywhere status %d, want 404", resp.StatusCode)
	}
}

// TestMetricsMergeSearchGauges: the new search-introspection gauges
// take both merge paths — rbserve_build_info keeps its labels (counting
// nodes per build), while the per-job search gauges sum label-stripped
// into cluster_rbserve_job_* like the lower-bound gauge.
func TestMetricsMergeSearchGauges(t *testing.T) {
	node := func(metrics string) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, `{"ok":true}`)
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, metrics)
		})
		return httptest.NewServer(mux)
	}
	n1 := node("rbserve_build_info{version=\"v1\",go_version=\"go1.24\"} 1\n" +
		"rbserve_uptime_seconds 120\n" +
		"rbserve_job_expansion_rate{job=\"job-a-1\"} 50000\n" +
		"rbserve_job_table_bytes{job=\"job-a-1\"} 1000\n" +
		"rbserve_job_frontier_size{job=\"job-a-1\"} 40\n" +
		"rbserve_job_mailbox_depth{job=\"job-a-1\",worker=\"0\"} 3\n")
	defer n1.Close()
	n2 := node("rbserve_build_info{version=\"v1\",go_version=\"go1.24\"} 1\n" +
		"rbserve_uptime_seconds 80\n" +
		"rbserve_job_expansion_rate{job=\"job-b-1\"} 25000\n" +
		"rbserve_job_table_bytes{job=\"job-b-1\"} 500\n" +
		"rbserve_job_frontier_size{job=\"job-b-1\"} 10\n" +
		"rbserve_job_mailbox_depth{job=\"job-b-1\",worker=\"0\"} 4\n")
	defer n2.Close()

	members := []string{
		strings.TrimPrefix(n1.URL, "http://"),
		strings.TrimPrefix(n2.URL, "http://"),
	}
	p := NewProxy(ProxyConfig{Members: members, ProbeInterval: -1})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := b.String()
	for _, want := range []string{
		"cluster_rbserve_build_info{version=\"v1\",go_version=\"go1.24\"} 2\n",
		"cluster_rbserve_uptime_seconds 200\n",
		"cluster_rbserve_job_expansion_rate 75000\n",
		"cluster_rbserve_job_table_bytes 1500\n",
		"cluster_rbserve_job_frontier_size 50\n",
		"cluster_rbserve_job_mailbox_depth 7\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("merged metrics missing %q:\n%s", want, body)
		}
	}
}
