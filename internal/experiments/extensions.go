package experiments

import (
	"fmt"

	"rbpebble/internal/daggen"
	"rbpebble/internal/parpeb"
)

// ParallelPebbling is the second extension experiment: the
// multi-processor generalization (related work [8], Elango et al. SPAA
// 2014). It sweeps the processor count on the FFT butterfly and reports
// total and critical-path communication for two assignment strategies —
// the classic parallelism/communication tradeoff.
func ParallelPebbling() *Report {
	rep := &Report{
		ID:     "Extension — parallel",
		Title:  "Multi-processor pebbling (related work [8])",
		Claim:  "(extension) assignment quality is structure-dependent; cross-edges grow with P while aggregate fast memory also grows, so total traffic can move either way; per-processor load spreads as P grows",
		Header: []string{"workload", "P", "assign", "cross-edges", "total", "max/proc"},
	}
	g := daggen.FFT(4)
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	r := 8
	for _, p := range []int{1, 2, 4, 8} {
		for _, a := range []struct {
			name   string
			assign parpeb.Assignment
		}{
			{"round-robin", parpeb.RoundRobin(order, g.N(), p)},
			{"blocks", parpeb.Blocks(order, g.N(), p)},
		} {
			cfg := parpeb.Config{P: p, R: r, Oneshot: true}
			_, res, err := parpeb.Execute(g, cfg, order, a.assign)
			if err != nil {
				panic(err)
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("fft(4) n=%d", g.N()), itoa(p), a.name,
				itoa(res.CrossEdges), itoa(res.Total), itoa(res.MaxProc),
			})
		}
	}
	rep.Verdict = "on the butterfly, round-robin keeps straight edges local (fewer cross-edges than blocks) and extra aggregate capacity outweighs communication, so its total falls with P; blocks pay more as P grows; max/proc falls in both — the tradeoffs the multi-shade game models"
	return rep
}
