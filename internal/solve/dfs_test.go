package solve

import (
	"errors"
	"testing"
	"testing/quick"

	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
)

func TestExactDFSMatchesDijkstra(t *testing.T) {
	// Two independent exact algorithms must agree on the optimum.
	for seed := int64(0); seed < 8; seed++ {
		g := daggen.RandomLayered(3, 3, 2, seed)
		r := pebble.MinFeasibleR(g)
		for _, kind := range []pebble.ModelKind{pebble.Oneshot, pebble.NoDel} {
			p := prob(g, kind, r)
			a, err := Exact(p, ExactOptions{})
			if err != nil {
				t.Fatalf("seed %d %v dijkstra: %v", seed, kind, err)
			}
			b, err := ExactDFS(p, ExactDFSOptions{})
			if err != nil {
				t.Fatalf("seed %d %v dfs: %v", seed, kind, err)
			}
			if a.Result.Cost.Scaled(p.Model) != b.Result.Cost.Scaled(p.Model) {
				t.Fatalf("seed %d %v: dijkstra %v != dfs %v", seed, kind, a.Result.Cost, b.Result.Cost)
			}
		}
	}
}

func TestExactDFSRejectsUnsupportedModels(t *testing.T) {
	g := daggen.Chain(3)
	for _, kind := range []pebble.ModelKind{pebble.Base, pebble.CompCost} {
		if _, err := ExactDFS(prob(g, kind, 2), ExactDFSOptions{}); err == nil {
			t.Fatalf("%v accepted", kind)
		}
	}
}

func TestExactDFSVisitLimit(t *testing.T) {
	g := daggen.Pyramid(3)
	_, err := ExactDFS(prob(g, pebble.Oneshot, 3), ExactDFSOptions{MaxVisits: 3})
	if !errors.Is(err, ErrVisitLimit) {
		t.Fatalf("err = %v", err)
	}
}

// TestExactDFSVisitLimitStats checks the satellite contract: a
// visit-limited run reports its search stats (visits, iterations, best
// incumbent, threshold) alongside ErrVisitLimit instead of a bare
// error, for both algorithms.
func TestExactDFSVisitLimitStats(t *testing.T) {
	g := daggen.Pyramid(4)
	p := prob(g, pebble.Oneshot, 3)
	for _, algo := range []DFSAlgorithm{DFSIDAStar, DFSBranchAndBound} {
		var s ExactDFSStats
		_, err := ExactDFS(p, ExactDFSOptions{MaxVisits: 50, Algorithm: algo, Stats: &s})
		if !errors.Is(err, ErrVisitLimit) {
			t.Fatalf("%s: err = %v, want ErrVisitLimit", algo, err)
		}
		if s.Visits <= 50-10 || s.Visits > 51 {
			t.Fatalf("%s: stats.Visits = %d, want ~50", algo, s.Visits)
		}
		if s.Iterations < 1 {
			t.Fatalf("%s: stats.Iterations = %d", algo, s.Iterations)
		}
		if s.Incumbent <= 0 {
			t.Fatalf("%s: stats.Incumbent = %d, want the seeded upper bound", algo, s.Incumbent)
		}
	}
}

// TestIDAStarMatchesBnB cross-validates the two DFS schemes and the
// best-first solver on small instances in both supported models.
func TestIDAStarMatchesBnB(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := daggen.RandomLayered(3, 3, 2, seed)
		r := pebble.MinFeasibleR(g)
		for _, kind := range []pebble.ModelKind{pebble.Oneshot, pebble.NoDel} {
			p := prob(g, kind, r)
			ref, err := Exact(p, ExactOptions{})
			if err != nil {
				t.Fatalf("seed %d %v astar: %v", seed, kind, err)
			}
			want := ref.Result.Cost.Scaled(p.Model)
			for _, algo := range []DFSAlgorithm{DFSIDAStar, DFSBranchAndBound} {
				var s ExactDFSStats
				sol, err := ExactDFS(p, ExactDFSOptions{Algorithm: algo, Stats: &s})
				if err != nil {
					t.Fatalf("seed %d %v %s: %v", seed, kind, algo, err)
				}
				if got := sol.Result.Cost.Scaled(p.Model); got != want {
					t.Fatalf("seed %d %v %s: cost %d != astar %d", seed, kind, algo, got, want)
				}
				if s.Incumbent != want {
					t.Fatalf("seed %d %v %s: stats incumbent %d != optimum %d", seed, kind, algo, s.Incumbent, want)
				}
			}
		}
	}
}

func TestExactDFSSeededBound(t *testing.T) {
	// Seeding with a tight known bound must not change the optimum.
	g := daggen.Pyramid(2)
	p := prob(g, pebble.Oneshot, 3)
	plain, err := ExactDFS(p, ExactDFSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := ExactDFS(p, ExactDFSOptions{InitialBound: plain.Result.Cost.Scaled(p.Model) + 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Result.Cost != seeded.Result.Cost {
		t.Fatalf("seeded bound changed optimum: %v vs %v", plain.Result.Cost, seeded.Result.Cost)
	}
}

func TestRandomOrdersNeverWorseThanTopoBelady(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := daggen.RandomLayered(4, 5, 3, seed)
		p := prob(g, pebble.Oneshot, pebble.MinFeasibleR(g))
		tb, err := TopoBelady(p)
		if err != nil {
			t.Fatal(err)
		}
		ro, err := RandomOrders(p, RandomOrdersOptions{Samples: 16, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if ro.Result.Cost.Transfers > tb.Result.Cost.Transfers {
			t.Fatalf("seed %d: sampling %d worse than TopoBelady %d",
				seed, ro.Result.Cost.Transfers, tb.Result.Cost.Transfers)
		}
	}
}

func TestRandomOrdersNeverBeatsExact(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := daggen.RandomLayered(3, 3, 2, seed)
		p := prob(g, pebble.Oneshot, pebble.MinFeasibleR(g))
		ex, err := Exact(p, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ro, err := RandomOrders(p, RandomOrdersOptions{Samples: 32, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if ro.Result.Cost.Transfers < ex.Result.Cost.Transfers {
			t.Fatalf("seed %d: heuristic beat the exact optimum", seed)
		}
	}
}

func TestRandomOrdersDeterministicPerSeed(t *testing.T) {
	g := daggen.RandomLayered(4, 4, 2, 3)
	p := prob(g, pebble.Oneshot, pebble.MinFeasibleR(g))
	a, err := RandomOrders(p, RandomOrdersOptions{Samples: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomOrders(p, RandomOrdersOptions{Samples: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Cost != b.Result.Cost {
		t.Fatal("same seed, different result")
	}
}

// Property: both exact solvers agree on random small instances in the
// oneshot model (the strongest cross-validation in the suite).
func TestQuickExactSolversAgree(t *testing.T) {
	f := func(seed int64) bool {
		g := daggen.RandomTriangular(6, 0.3, seed)
		r := pebble.MinFeasibleR(g)
		p := prob(g, pebble.Oneshot, r)
		a, err1 := Exact(p, ExactOptions{})
		b, err2 := ExactDFS(p, ExactDFSOptions{})
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Result.Cost.Transfers == b.Result.Cost.Transfers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExactDFSPyramid(b *testing.B) {
	g := daggen.Pyramid(2)
	p := prob(g, pebble.Oneshot, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExactDFS(p, ExactDFSOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
