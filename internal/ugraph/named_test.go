package ugraph

import "testing"

func TestPetersen(t *testing.T) {
	g := Petersen()
	if g.N() != 10 || g.M() != 15 {
		t.Fatalf("Petersen: n=%d m=%d", g.N(), g.M())
	}
	// 3-regular.
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("Petersen degree(%d) = %d", v, g.Degree(v))
		}
	}
	// Girth 5: no triangles, no 4-cycles through edge (0,1) spot checks.
	for _, e := range g.Edges() {
		for w := 0; w < 10; w++ {
			if w != e[0] && w != e[1] && g.HasEdge(e[0], w) && g.HasEdge(e[1], w) {
				t.Fatalf("Petersen has a triangle at %v + %d", e, w)
			}
		}
	}
}

func TestHypercube(t *testing.T) {
	for d := 1; d <= 4; d++ {
		g := Hypercube(d)
		n := 1 << uint(d)
		if g.N() != n || g.M() != d*n/2 {
			t.Fatalf("Q_%d: n=%d m=%d", d, g.N(), g.M())
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) != d {
				t.Fatalf("Q_%d degree(%d) = %d", d, v, g.Degree(v))
			}
		}
	}
}

func TestGridGraph(t *testing.T) {
	g := GridGraph(3, 4)
	if g.N() != 12 || g.M() != 3*3+2*4 {
		t.Fatalf("grid: n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(0) != 2 || g.Degree(5) != 4 {
		t.Fatal("grid degrees wrong")
	}
}

func TestWheel(t *testing.T) {
	g := Wheel(6)
	if g.N() != 6 || g.M() != 10 {
		t.Fatalf("wheel: n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(0) != 5 {
		t.Fatal("hub degree wrong")
	}
	for v := 1; v < 6; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("rim degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestNamedPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Hypercube(0) },
		func() { GridGraph(0, 3) },
		func() { Wheel(3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}
