package pebble

import (
	"errors"
	"fmt"

	"rbpebble/internal/bitset"
	"rbpebble/internal/dag"
)

// MoveKind enumerates the four pebbling operations.
type MoveKind int

const (
	// Load replaces a blue pebble with a red one (Step 1).
	Load MoveKind = iota
	// Store replaces a red pebble with a blue one (Step 2).
	Store
	// Compute places a red pebble on a node whose inputs are all red
	// (Step 3). Sources are always computable.
	Compute
	// Delete removes the pebble from a node (Step 4).
	Delete
)

// String names the move kind.
func (k MoveKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Compute:
		return "compute"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("MoveKind(%d)", int(k))
	}
}

// Move is a single pebbling operation applied to one node.
type Move struct {
	Kind MoveKind
	Node dag.NodeID
}

// String renders the move like "compute(7)".
func (m Move) String() string { return fmt.Sprintf("%s(%d)", m.Kind, m.Node) }

// Convention selects the initial/final-state convention (paper Appendix C).
// The zero value is the paper's own definition: sources are freely
// computable and sinks may finish with a pebble of either color.
type Convention struct {
	// SourcesStartBlue places an initial blue pebble on every source and
	// forbids computing sources (the Hong-Kung style initialization).
	SourcesStartBlue bool
	// SinksMustBeBlue requires every sink to hold a *blue* pebble for the
	// pebbling to count as complete.
	SinksMustBeBlue bool
}

// Common engine errors. Apply wraps these with node context.
var (
	ErrRedLimit       = errors.New("pebble: red pebble limit reached")
	ErrNotBlue        = errors.New("pebble: node does not hold a blue pebble")
	ErrNotRed         = errors.New("pebble: node does not hold a red pebble")
	ErrNoPebble       = errors.New("pebble: node holds no pebble")
	ErrAlreadyRed     = errors.New("pebble: node already holds a red pebble")
	ErrInputsNotRed   = errors.New("pebble: not all inputs hold red pebbles")
	ErrRecompute      = errors.New("pebble: node already computed (oneshot)")
	ErrDeleteBanned   = errors.New("pebble: delete not available (nodel)")
	ErrSourceCompute  = errors.New("pebble: sources are not computable under SourcesStartBlue")
	ErrNodeOutOfRange = errors.New("pebble: node out of range")
	ErrInfeasibleR    = errors.New("pebble: R < Δ+1, no pebbling exists")
	ErrInvalidR       = errors.New("pebble: R must be positive")
)

// State is a live pebbling position: which nodes hold red or blue pebbles,
// which have been computed (for oneshot), the running cost and step count.
// Create with NewState, advance with Apply.
type State struct {
	g     *dag.DAG
	model Model
	conv  Convention
	r     int

	red      *bitset.Set
	blue     *bitset.Set
	computed *bitset.Set // nodes ever computed (tracked in every model; enforced in oneshot)
	redCount int
	cost     Cost
	steps    int

	sinks []dag.NodeID // cached g.Sinks(), shared across Clones: Complete is solver-hot
}

// NewState returns the initial state for pebbling g with R red pebbles
// under the given model and convention. It returns an error for invalid
// models or an R that makes pebbling impossible (R < Δ+1, unless the DAG
// has no edges).
func NewState(g *dag.DAG, model Model, r int, conv Convention) (*State, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if r < 1 {
		return nil, ErrInvalidR
	}
	if d := g.MaxInDegree(); r < d+1 {
		return nil, fmt.Errorf("%w: R=%d, Δ=%d", ErrInfeasibleR, r, d)
	}
	s := &State{
		g:        g,
		model:    model,
		conv:     conv,
		r:        r,
		red:      bitset.New(g.N()),
		blue:     bitset.New(g.N()),
		computed: bitset.New(g.N()),
		sinks:    g.Sinks(),
	}
	if conv.SourcesStartBlue {
		for _, v := range g.Sources() {
			s.blue.Set(int(v))
		}
	}
	return s, nil
}

// Graph returns the DAG being pebbled.
func (s *State) Graph() *dag.DAG { return s.g }

// Model returns the cost model in force.
func (s *State) Model() Model { return s.model }

// R returns the red pebble limit.
func (s *State) R() int { return s.r }

// Convention returns the initial/final-state convention in force.
func (s *State) Convention() Convention { return s.conv }

// Cost returns the accumulated cost so far.
func (s *State) Cost() Cost { return s.cost }

// Steps returns the number of moves applied so far.
func (s *State) Steps() int { return s.steps }

// RedCount returns the number of red pebbles currently on the DAG.
func (s *State) RedCount() int { return s.redCount }

// IsRed reports whether v currently holds a red pebble.
func (s *State) IsRed(v dag.NodeID) bool { return s.red.Get(int(v)) }

// IsBlue reports whether v currently holds a blue pebble.
func (s *State) IsBlue(v dag.NodeID) bool { return s.blue.Get(int(v)) }

// HasPebble reports whether v holds a pebble of either color.
func (s *State) HasPebble(v dag.NodeID) bool { return s.IsRed(v) || s.IsBlue(v) }

// WasComputed reports whether Compute has ever been applied to v.
func (s *State) WasComputed(v dag.NodeID) bool { return s.computed.Get(int(v)) }

// RedSet returns a copy of the current red set.
func (s *State) RedSet() *bitset.Set { return s.red.Clone() }

// BlueSet returns a copy of the current blue set.
func (s *State) BlueSet() *bitset.Set { return s.blue.Clone() }

// ComputedSet returns a copy of the computed set.
func (s *State) ComputedSet() *bitset.Set { return s.computed.Clone() }

// Clone returns an independent copy of the state (sharing the immutable
// DAG).
func (s *State) Clone() *State {
	c := *s
	c.red = s.red.Clone()
	c.blue = s.blue.Clone()
	c.computed = s.computed.Clone()
	return &c
}

// Key returns a compact encoding of (red, blue, computed) usable as a map
// key for visited-state deduplication in solvers.
func (s *State) Key() string {
	buf := make([]byte, 0, 3*((s.g.N()+63)/64)*8)
	buf = s.red.AppendKey(buf)
	buf = s.blue.AppendKey(buf)
	buf = s.computed.AppendKey(buf)
	return string(buf)
}

// PackedKey is the packed binary encoding of a pebbling position: the
// red, blue and computed bitset words concatenated, PackedWords() words
// in total. Unlike Key it allocates nothing when appended to a reused
// buffer, and is the representation solvers store in their visited
// tables.
type PackedKey []uint64

// PackedWords returns the length of this state's packed encoding.
func (s *State) PackedWords() int { return 3 * s.red.WordLen() }

// AppendPacked appends the packed encoding of (red, blue, computed) to
// dst and returns the extended slice.
func (s *State) AppendPacked(dst PackedKey) PackedKey {
	dst = s.red.AppendWords(dst)
	dst = s.blue.AppendWords(dst)
	dst = s.computed.AppendWords(dst)
	return dst
}

// RestorePacked overwrites the pebble configuration from a packed key
// previously produced by AppendPacked on a state of the same graph. The
// red count is recomputed; cost and steps are reset to zero (solvers
// that jump between stored positions track path costs externally). It
// panics if k has the wrong length.
func (s *State) RestorePacked(k PackedKey) {
	w := s.red.WordLen()
	if len(k) != 3*w {
		panic("pebble: RestorePacked length mismatch")
	}
	s.red.LoadWords(k[:w])
	s.blue.LoadWords(k[w : 2*w])
	s.computed.LoadWords(k[2*w:])
	s.redCount = s.red.Count()
	s.cost = Cost{}
	s.steps = 0
}

// Undo records what a single Apply changed so that the move can be
// reverted in place by State.Undo. The zero value is not meaningful;
// obtain Undo tokens from ApplyForUndo.
type Undo struct {
	move        Move
	wasBlue     bool // Compute/Delete: the node held a blue pebble before
	wasComputed bool // Compute: the computed bit was already set before
}

// ApplyForUndo executes the move like Apply and returns an Undo token
// that reverts it. It lets search loops explore a candidate move on a
// scratch state without cloning: Apply, inspect, Undo.
func (s *State) ApplyForUndo(m Move) (Undo, error) {
	v := int(m.Node)
	u := Undo{move: m}
	if m.Kind == Compute || m.Kind == Delete {
		// Record before Apply mutates the bits.
		if v >= 0 && v < s.g.N() {
			u.wasBlue = s.blue.Get(v)
			u.wasComputed = s.computed.Get(v)
		}
	}
	if err := s.Apply(m); err != nil {
		return Undo{}, err
	}
	return u, nil
}

// Undo reverts a move previously applied with ApplyForUndo. Tokens must
// be undone in reverse application order (stack discipline); undoing in
// any other order corrupts the state.
func (s *State) Undo(u Undo) {
	v := int(u.move.Node)
	switch u.move.Kind {
	case Load:
		s.red.Clear(v)
		s.redCount--
		s.blue.Set(v)
		s.cost.Transfers--
	case Store:
		s.blue.Clear(v)
		s.red.Set(v)
		s.redCount++
		s.cost.Transfers--
	case Compute:
		s.red.Clear(v)
		s.redCount--
		if u.wasBlue {
			s.blue.Set(v)
		}
		if !u.wasComputed {
			s.computed.Clear(v)
		}
		s.cost.Computes--
	case Delete:
		if u.wasBlue {
			s.blue.Set(v)
		} else {
			s.red.Set(v)
			s.redCount++
		}
	}
	s.steps--
}

// Check reports whether the move m is legal in the current state, without
// applying it. A nil return means Apply(m) would succeed.
func (s *State) Check(m Move) error {
	v := int(m.Node)
	if v < 0 || v >= s.g.N() {
		return fmt.Errorf("%w: %d", ErrNodeOutOfRange, m.Node)
	}
	switch m.Kind {
	case Load:
		if !s.blue.Get(v) {
			return fmt.Errorf("%w: %s", ErrNotBlue, m)
		}
		if s.redCount >= s.r {
			return fmt.Errorf("%w: %s (R=%d)", ErrRedLimit, m, s.r)
		}
		return nil
	case Store:
		if !s.red.Get(v) {
			return fmt.Errorf("%w: %s", ErrNotRed, m)
		}
		return nil
	case Compute:
		if s.conv.SourcesStartBlue && s.g.IsSource(m.Node) {
			return fmt.Errorf("%w: %s", ErrSourceCompute, m)
		}
		if s.model.Kind == Oneshot && s.computed.Get(v) {
			return fmt.Errorf("%w: %s", ErrRecompute, m)
		}
		if s.red.Get(v) {
			return fmt.Errorf("%w: %s", ErrAlreadyRed, m)
		}
		for _, u := range s.g.Preds(m.Node) {
			if !s.red.Get(int(u)) {
				return fmt.Errorf("%w: %s (input %d not red)", ErrInputsNotRed, m, u)
			}
		}
		if s.redCount >= s.r {
			return fmt.Errorf("%w: %s (R=%d)", ErrRedLimit, m, s.r)
		}
		return nil
	case Delete:
		if s.model.Kind == NoDel {
			return fmt.Errorf("%w: %s", ErrDeleteBanned, m)
		}
		if !s.red.Get(v) && !s.blue.Get(v) {
			return fmt.Errorf("%w: %s", ErrNoPebble, m)
		}
		return nil
	default:
		return fmt.Errorf("pebble: unknown move kind %d", int(m.Kind))
	}
}

// CanApply reports whether move m is legal in the current state. It is
// the allocation-free twin of Check for solver hot loops: Check explains
// why a move is illegal (building an error), CanApply only answers.
func (s *State) CanApply(m Move) bool {
	v := int(m.Node)
	if v < 0 || v >= s.g.N() {
		return false
	}
	switch m.Kind {
	case Load:
		return s.blue.Get(v) && s.redCount < s.r
	case Store:
		return s.red.Get(v)
	case Compute:
		if s.conv.SourcesStartBlue && s.g.IsSource(m.Node) {
			return false
		}
		if s.model.Kind == Oneshot && s.computed.Get(v) {
			return false
		}
		if s.red.Get(v) || s.redCount >= s.r {
			return false
		}
		for _, u := range s.g.Preds(m.Node) {
			if !s.red.Get(int(u)) {
				return false
			}
		}
		return true
	case Delete:
		if s.model.Kind == NoDel {
			return false
		}
		return s.red.Get(v) || s.blue.Get(v)
	default:
		return false
	}
}

// Apply executes the move, updating pebbles, cost and step count. It
// returns an error (and leaves the state unchanged) if the move is
// illegal.
func (s *State) Apply(m Move) error {
	if err := s.Check(m); err != nil {
		return err
	}
	v := int(m.Node)
	switch m.Kind {
	case Load:
		s.blue.Clear(v)
		s.red.Set(v)
		s.redCount++
		s.cost.Transfers++
	case Store:
		s.red.Clear(v)
		s.redCount--
		s.blue.Set(v)
		s.cost.Transfers++
	case Compute:
		// A blue pebble on v (if any) is replaced by the red pebble.
		if s.blue.Get(v) {
			s.blue.Clear(v)
		}
		s.red.Set(v)
		s.redCount++
		s.computed.Set(v)
		s.cost.Computes++
	case Delete:
		if s.red.Get(v) {
			s.red.Clear(v)
			s.redCount--
		} else {
			s.blue.Clear(v)
		}
	}
	s.steps++
	return nil
}

// MustApply applies the move and panics on an illegal move. Intended for
// schedule builders whose moves are correct by construction.
func (s *State) MustApply(m Move) {
	if err := s.Apply(m); err != nil {
		panic(err)
	}
}

// Complete reports whether the pebbling goal is reached: every sink holds
// a pebble (a blue one, under SinksMustBeBlue).
func (s *State) Complete() bool {
	for _, v := range s.sinks {
		if s.conv.SinksMustBeBlue {
			if !s.blue.Get(int(v)) {
				return false
			}
		} else if !s.red.Get(int(v)) && !s.blue.Get(int(v)) {
			return false
		}
	}
	return true
}

// String summarizes the state.
func (s *State) String() string {
	return fmt.Sprintf("State(model=%s R=%d red=%s blue=%s cost=%s steps=%d)",
		s.model, s.r, s.red, s.blue, s.cost, s.steps)
}
