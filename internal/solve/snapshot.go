package solve

import "time"

// Engine-introspection snapshots. Every exact engine periodically fills
// an ExactProgress (exact.go) with the live shape of its search —
// expansion rate, open-queue size and per-f histogram, state-table
// occupancy, frontier f/g, per-worker heap/mailbox/floor data, IDA*
// threshold schedule — on a time-based cadence controlled by
// ExactOptions.ProgressEvery. The machinery here is shared: the sampler
// that turns wall-clock windows into rates, the queue/table accessors
// the builders read, and the f-value normalization (the engines use
// costUnreached internally; snapshots report -1 for "no frontier" so
// the values survive JSON encoding unscathed).

// defaultProgressEvery is the snapshot cadence when a Progress listener
// is attached but no explicit ProgressEvery is configured.
const defaultProgressEvery = 100 * time.Millisecond

// maxSnapshotBuckets caps the per-f histogram length in one snapshot
// (the live bucket range is tiny for every sane model, but pathological
// compcost scales could spread the frontier over thousands of levels).
const maxSnapshotBuckets = 32

// QueueBucket is one f-level of the open queue in a snapshot.
type QueueBucket struct {
	// F is the bucket's f value (priority level).
	F int64 `json:"f"`
	// Count is the number of open entries at that level.
	Count int `json:"count"`
}

// WorkerProgress is one parallel worker's slot in a snapshot.
type WorkerProgress struct {
	// ID is the shard/worker index.
	ID int `json:"id"`
	// Expanded and Pushed are the worker's cumulative counters.
	Expanded int `json:"expanded"`
	Pushed   int `json:"pushed"`
	// OpenSize is the worker's open-list length.
	OpenSize int `json:"open_size"`
	// HeapMinF is the worker's published heap minimum f (-1: empty).
	HeapMinF int64 `json:"heap_min_f"`
	// Floor is the worker's certified in-flight floor (-1: none) —
	// async engine only.
	Floor int64 `json:"floor"`
	// MailboxDepth is the number of proposals pending in mailboxes
	// addressed to this worker — async engine only.
	MailboxDepth int `json:"mailbox_depth"`
	// TableCount/TableBytes are the worker's shard table occupancy.
	TableCount int   `json:"table_count"`
	TableBytes int64 `json:"table_bytes"`
	// Passive reports the worker idle in the termination protocol —
	// async engine only.
	Passive bool `json:"passive,omitempty"`
}

// progressSampler owns the time-based snapshot cadence of one engine
// run: due() is the cheap gate the hot loop polls (one monotonic clock
// read), tick() advances the rate window when a snapshot is actually
// built. Engines create one only when a Progress listener is attached,
// so a nil-listener run pays a single nil check per gate visit.
type progressSampler struct {
	every time.Duration
	start time.Time
	last  time.Time
	lastN int
}

func newProgressSampler(every time.Duration) *progressSampler {
	if every <= 0 {
		every = defaultProgressEvery
	}
	now := time.Now()
	return &progressSampler{every: every, start: now, last: now}
}

// due reports whether the cadence interval has elapsed since the last
// snapshot.
func (s *progressSampler) due() bool {
	return time.Since(s.last) >= s.every
}

// tick advances the rate window: it returns the elapsed time since the
// search started and the expansion rate (states/s) over the window
// since the previous tick, given the cumulative expansion count n.
func (s *progressSampler) tick(n int) (elapsed time.Duration, rate float64) {
	now := time.Now()
	elapsed = now.Sub(s.start)
	if dt := now.Sub(s.last).Seconds(); dt > 0 {
		rate = float64(n-s.lastN) / dt
	}
	s.last, s.lastN = now, n
	return elapsed, rate
}

// normF maps the internal "no value" sentinel to -1 for snapshots.
func normF(v int64) int64 {
	if v == costUnreached {
		return -1
	}
	return v
}

// load returns the probe-array load factor (distinct states per slot).
func (t *stateTable) load() float64 {
	if len(t.slots) == 0 {
		return 0
	}
	return float64(t.count()) / float64(len(t.slots))
}

// histogram appends one QueueBucket per nonempty f level (ascending f,
// at most maxSnapshotBuckets; the overflow heap — f >= bqMaxF — is
// summarized as a single bucket at its minimum f). Owner-thread only,
// like every other bucketQueue method.
func (q *bucketQueue) histogram(dst []QueueBucket) []QueueBucket {
	for f := q.cur; f < len(q.bks) && len(dst) < maxSnapshotBuckets; f++ {
		if n := len(q.bks[f].a); n > 0 {
			dst = append(dst, QueueBucket{F: int64(f), Count: n})
		}
	}
	if len(q.over) > 0 && len(dst) < maxSnapshotBuckets {
		dst = append(dst, QueueBucket{F: q.over[0].f, Count: len(q.over)})
	}
	return dst
}

// singleProgress builds the snapshot of a single-table, single-queue
// engine (the serial A* loop). Called on the solver goroutine with the
// structures quiescent.
func singleProgress(s *progressSampler, expanded, pushed int, lower int64, table *stateTable, open *bucketQueue) ExactProgress {
	elapsed, rate := s.tick(expanded)
	pr := ExactProgress{
		Engine:     "astar",
		Expanded:   expanded,
		LowerBound: lower,
		Elapsed:    elapsed,
		Rate:       rate,
		Pushed:     pushed,
		Distinct:   table.count(),
		OpenSize:   open.len(),
		FrontierF:  -1,
		FrontierG:  -1,
		TableBytes: table.bytes(),
		TableLoad:  table.load(),
	}
	if open.len() > 0 {
		pr.FrontierF, pr.FrontierG = open.top()
		pr.OpenBuckets = open.histogram(nil)
	}
	return pr
}
