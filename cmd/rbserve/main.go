// Command rbserve serves red-blue pebbling solves over HTTP: a JSON API
// backed by the anytime orchestrator, a canonical instance cache with
// singleflight deduplication, and a worker-pool job queue for async
// requests.
//
// Usage:
//
//	rbserve -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/solve -d '{
//	    "dag": {"nodes": 3, "edges": [[0,2],[1,2]]},
//	    "model": "oneshot", "r": 3, "deadline_ms": 1000}'
//	curl -s localhost:8080/metrics
//
// Hard instances return a certified [lower, upper] interval when the
// deadline fires; repeated and concurrent identical instances (under
// any node numbering) share one solve through the cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rbpebble/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 2, "async job worker-pool size")
		queueDepth   = flag.Int("queue", 64, "async job queue depth")
		cacheSize    = flag.Int("cache", 256, "solution cache entries (LRU)")
		deadline     = flag.Duration("deadline", 2*time.Second, "default per-request solve budget")
		maxDeadline  = flag.Duration("max-deadline", 30*time.Second, "largest accepted per-request budget")
		solveWorkers = flag.Int("solve-workers", 1, "parallel expansion workers inside each exact solve")
		maxNodes     = flag.Int("max-nodes", 100000, "largest accepted instance")
		grace        = flag.Duration("grace", 10*time.Second, "graceful-shutdown window for in-flight solves on SIGTERM")
	)
	flag.Parse()

	s := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CacheSize:       *cacheSize,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		SolveWorkers:    *solveWorkers,
		MaxNodes:        *maxNodes,
		GracePeriod:     *grace,
	})
	srv := &http.Server{Addr: *addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("rbserve: listening on %s (deadline=%s cache=%d workers=%d)",
		*addr, *deadline, *cacheSize, *workers)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "rbserve:", err)
		os.Exit(1)
	case sig := <-sigc:
		// Graceful node lifecycle: fail /healthz FIRST so the routing
		// proxy's next probe stops sending work here, then let in-flight
		// HTTP requests and async jobs finish within the grace window —
		// solves still running at its end are canceled cooperatively and
		// land their partial certified intervals in the cache.
		log.Printf("rbserve: %s, draining (grace %s)", sig, *grace)
		s.Drain()
		// One grace window covers BOTH teardown steps: the HTTP listener
		// drain and the async worker drain share the deadline, so the
		// total never exceeds -grace (an operator aligning it with e.g.
		// a kubelet termination grace must not see it spent twice).
		deadline := time.Now().Add(*grace)
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("rbserve: http shutdown: %v", err)
		}
		s.ShutdownWithin(time.Until(deadline))
		log.Printf("rbserve: drained, exiting")
	}
}
