package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"rbpebble/internal/obs"
)

// ErrBreakerOpen is returned without any network attempt when the
// target member's circuit breaker is open: the member failed several
// consecutive calls recently and its cooldown has not elapsed. Callers
// treat it like a connection failure (skip the member, try the next
// ring owner) — the point of the breaker is to make that decision in
// nanoseconds instead of a dial timeout.
var ErrBreakerOpen = errors.New("cluster: circuit breaker open")

// CommConfig tunes the hardened proxy->node HTTP client. Zero values
// select the defaults.
type CommConfig struct {
	// Client performs the individual attempts. Default: a plain client
	// with no overall timeout — per-attempt deadlines come from
	// AttemptTimeout, and an overall bound from the caller's context.
	Client *http.Client
	// AttemptTimeout bounds each individual attempt (default: the
	// Client's Timeout when set, else 60s — it must outlive the longest
	// node-side solve deadline).
	AttemptTimeout time.Duration
	// MaxAttempts bounds the attempts per call when the failure is
	// retryable (default 3). Idempotent calls (GET, DELETE) are retried
	// on any transport error; POSTs only on dial-level errors
	// (connection refused, no route) where no request bytes were sent —
	// replaying a POST that may have been processed could double-submit
	// an async job.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the jittered exponential backoff
	// between attempts: attempt i sleeps uniform[d/2, d) where
	// d = min(BackoffBase << (i-1), BackoffMax). Defaults 50ms / 2s.
	BackoffBase, BackoffMax time.Duration
	// BreakerThreshold opens a member's breaker after this many
	// consecutive transport failures (default 4); BreakerCooldown is how
	// long an open breaker fails fast before admitting one half-open
	// trial call (default 5s). A successful trial closes the breaker, a
	// failed one re-arms the cooldown.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// OnBreakerOpen fires once per closed->open transition (outside the
	// breaker lock). The proxy uses it to demote the member in the ring
	// immediately instead of waiting for the next health probe.
	OnBreakerOpen func(member string)

	// sleep and now are test seams; nil selects real time.
	sleep func(ctx context.Context, d time.Duration) error
	now   func() time.Time
}

// breaker is one member's circuit-breaker state.
type breaker struct {
	fails int
	open  bool
	until time.Time // while open: next moment a half-open trial is admitted
}

// CommClient is the single client wrapper every proxy->node HTTP call
// goes through: per-attempt timeouts, a bounded retry budget with
// jittered exponential backoff (idempotent calls retried freely, POSTs
// only on pre-send dial errors), and a per-member circuit breaker that
// fails fast on flapping members. Safe for concurrent use.
type CommClient struct {
	cfg    CommConfig
	client *http.Client

	mu       sync.Mutex
	breakers map[string]*breaker
}

// NewComm returns a CommClient with cfg's policy.
func NewComm(cfg CommConfig) *CommClient {
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.AttemptTimeout <= 0 {
		if cfg.Client.Timeout > 0 {
			cfg.AttemptTimeout = cfg.Client.Timeout
		} else {
			cfg.AttemptTimeout = 60 * time.Second
		}
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 4
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.sleep == nil {
		cfg.sleep = sleepCtx
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &CommClient{cfg: cfg, client: cfg.Client, breakers: make(map[string]*breaker)}
}

// Get issues GET http://member+path with the retry/breaker policy
// (idempotent: retried on any transport failure).
func (c *CommClient) Get(ctx context.Context, member, path string) (*http.Response, error) {
	return c.Do(ctx, member, http.MethodGet, path, "", nil)
}

// Post issues POST http://member+path with the retry/breaker policy.
// The body is a byte slice (not a stream) so retries can replay it —
// but POSTs are only retried on dial-level errors where no bytes were
// sent.
func (c *CommClient) Post(ctx context.Context, member, path, contentType string, body []byte) (*http.Response, error) {
	return c.Do(ctx, member, http.MethodPost, path, contentType, body)
}

// Do issues one call under the full policy. GET and DELETE are treated
// as idempotent.
func (c *CommClient) Do(ctx context.Context, member, method, path, contentType string, body []byte) (*http.Response, error) {
	idempotent := method == http.MethodGet || method == http.MethodDelete || method == http.MethodHead
	if !c.allow(member) {
		return nil, fmt.Errorf("%s: %w", member, ErrBreakerOpen)
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.cfg.sleep(ctx, c.backoff(attempt)); err != nil {
				break // caller context canceled mid-backoff
			}
			if !c.allow(member) {
				lastErr = fmt.Errorf("%s: %w", member, ErrBreakerOpen)
				break
			}
		}
		actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(actx, method, "http://"+member+path, rd)
		if err != nil {
			cancel()
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		// Every proxy->node call carries the caller's trace ID, so the
		// node's spans (and every retried attempt's) correlate under one
		// trace across the fleet.
		if id := obs.TraceIDFrom(ctx); id != "" {
			req.Header.Set(obs.TraceHeader, id)
		}
		resp, err := c.client.Do(req)
		if err == nil {
			c.markSuccess(member)
			// The attempt context must survive until the caller has read
			// the body: cancel it on Close instead of here.
			resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
			return resp, nil
		}
		cancel()
		c.markFailure(member)
		lastErr = err
		if ctx.Err() != nil {
			break // the overall call is dead; don't burn more attempts
		}
		if !idempotent && !dialError(err) {
			break // bytes may have reached the node: not safe to replay
		}
	}
	return nil, lastErr
}

// BreakerOpen reports whether member's breaker is currently open
// (ignoring the half-open trial window: an open breaker stays "open"
// for routing decisions until a call actually succeeds).
func (c *CommClient) BreakerOpen(member string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[member]
	return b != nil && b.open
}

// OpenBreakers lists the members with open breakers, sorted.
func (c *CommClient) OpenBreakers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for m, b := range c.breakers {
		if b.open {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// Forget drops member's breaker state (the member left the cluster).
func (c *CommClient) Forget(member string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.breakers, member)
}

// allow admits a call: always when the breaker is closed; when open,
// only a single trial per cooldown window (half-open probing).
func (c *CommClient) allow(member string) bool {
	now := c.cfg.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[member]
	if b == nil || !b.open {
		return true
	}
	if now.Before(b.until) {
		return false
	}
	// Half-open: admit this caller as the trial and push the window so
	// concurrent callers keep failing fast until the trial resolves.
	b.until = now.Add(c.cfg.BreakerCooldown)
	return true
}

func (c *CommClient) markSuccess(member string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b := c.breakers[member]; b != nil {
		b.fails, b.open = 0, false
	}
}

func (c *CommClient) markFailure(member string) {
	now := c.cfg.now()
	c.mu.Lock()
	b := c.breakers[member]
	if b == nil {
		b = &breaker{}
		c.breakers[member] = b
	}
	b.fails++
	opened := false
	if b.fails >= c.cfg.BreakerThreshold && !b.open {
		b.open, opened = true, true
	}
	if b.open {
		b.until = now.Add(c.cfg.BreakerCooldown)
	}
	c.mu.Unlock()
	if opened && c.cfg.OnBreakerOpen != nil {
		c.cfg.OnBreakerOpen(member)
	}
}

// backoff returns the jittered exponential delay before attempt
// (attempt >= 1): uniform in [d/2, d) with d doubling from BackoffBase
// and capped at BackoffMax. The jitter keeps a fleet of proxies from
// hammering a recovering node in lockstep.
func (c *CommClient) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d <= 0 || d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// dialError reports whether err happened at the dial layer — before
// any request bytes were written — making even a non-idempotent
// request safe to retry.
func dialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// cancelOnClose releases a successful attempt's context when the
// caller finishes with the body.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}
