package gadgets

import (
	"fmt"

	"rbpebble/internal/dag"
)

// H2C is the hard-to-compute gadget of Figure 2. For a designated node v
// it adds three starter nodes u1, u2, u3, each reading the entire shared
// group B of R-1 nodes, and makes u1, u2, u3 the inputs of v. Computing
// any starter occupies all R red pebbles (R-1 on B plus the starter), so
// when the last starter is computed the other two must have been stored;
// computing v therefore costs at least 4 transfers (2 stores + 2 loads).
//
// The gadget gives source nodes an inherent constant cost and — because
// re-deriving a starter from scratch costs at least 4 while a store/load
// round trip of v costs 2 — ensures reasonable pebblings never delete and
// recompute v (paper §3, "disabling the recomputation of nodes").
type H2C struct {
	G *dag.DAG
	// S is the shared root source feeding every node of B.
	S dag.NodeID
	// B is the shared group of R-1 nodes.
	B []dag.NodeID
	// Starters[v] lists the three starter nodes added for protected node v.
	Starters map[dag.NodeID][3]dag.NodeID
}

// MinTransferCost is the inherent transfer cost the gadget imposes on
// computing each protected node (2 stores + 2 loads).
const MinTransferCost = 4

// AttachH2C augments g with one shared H2C gadget protecting each of the
// given nodes (which must currently be sources of g): each protected node
// v gains inputs u1, u2, u3. The group B has r-1 nodes, so the augmented
// DAG is meant to be pebbled with the same r as the host construction
// (the starters then need all r red pebbles). Per the paper this adds
// 3 nodes per protected source plus r shared nodes in total.
func AttachH2C(g *dag.DAG, protect []dag.NodeID, r int) *H2C {
	if r < 2 {
		panic("gadgets: AttachH2C needs r >= 2")
	}
	for _, v := range protect {
		if !g.IsSource(v) {
			panic(fmt.Sprintf("gadgets: AttachH2C: node %d is not a source", v))
		}
	}
	h := &H2C{G: g, Starters: make(map[dag.NodeID][3]dag.NodeID, len(protect))}
	h.S = g.AddLabeledNode("h2c.s")
	h.B = g.AddNodes(r - 1)
	for i, b := range h.B {
		g.SetLabel(b, fmt.Sprintf("h2c.b%d", i))
		g.AddEdge(h.S, b)
	}
	for _, v := range protect {
		var us [3]dag.NodeID
		for i := 0; i < 3; i++ {
			u := g.AddLabeledNode(fmt.Sprintf("h2c.u%d(%d)", i+1, v))
			for _, b := range h.B {
				g.AddEdge(b, u)
			}
			us[i] = u
			g.AddEdge(u, v)
		}
		h.Starters[v] = us
	}
	return h
}

// StrategyMoves returns a compute order that resolves the gadget for one
// protected node v at minimal cost, assuming it runs first (B red):
// the caller appends it before its own order. The order is: s, B, u1, u2,
// u3 — the store/load shuffle is handled by the scheduler's eviction.
func (h *H2C) StrategyOrder(v dag.NodeID) []dag.NodeID {
	us, ok := h.Starters[v]
	if !ok {
		panic(fmt.Sprintf("gadgets: node %d is not protected by this H2C", v))
	}
	order := make([]dag.NodeID, 0, len(h.B)+4)
	order = append(order, h.S)
	order = append(order, h.B...)
	order = append(order, us[0], us[1], us[2])
	return order
}

// SharedOrderPrefix returns the order prefix computing the shared part
// (s and B) once; follow it with the starters of each protected node at
// the point its value is needed.
func (h *H2C) SharedOrderPrefix() []dag.NodeID {
	order := make([]dag.NodeID, 0, len(h.B)+1)
	order = append(order, h.S)
	order = append(order, h.B...)
	return order
}

// StarterOrder returns just the three starters of v in computation order.
func (h *H2C) StarterOrder(v dag.NodeID) []dag.NodeID {
	us, ok := h.Starters[v]
	if !ok {
		panic(fmt.Sprintf("gadgets: node %d is not protected by this H2C", v))
	}
	return []dag.NodeID{us[0], us[1], us[2]}
}
