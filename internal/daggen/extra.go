package daggen

import (
	"fmt"

	"rbpebble/internal/dag"
)

// KaryTree returns a complete k-ary in-tree with the given number of
// levels: leaves are sources, the root (node 0) is the unique sink, and
// every internal node has its k children as inputs. Generalizes
// BinaryTree to reduction trees of arbitrary fan-in.
func KaryTree(k, levels int) *dag.DAG {
	if k < 2 || levels < 1 {
		panic("daggen: KaryTree needs k >= 2 and levels >= 1")
	}
	// Number of nodes: (k^levels - 1) / (k - 1).
	n := 1
	pow := 1
	for l := 1; l < levels; l++ {
		pow *= k
		n += pow
	}
	g := dag.New(n)
	for i := 0; i < n; i++ {
		for c := 0; c < k; c++ {
			child := k*i + 1 + c
			if child < n {
				g.AddEdge(dag.NodeID(child), dag.NodeID(i))
			}
		}
	}
	return g
}

// DenseLayer returns a fully connected bipartite computation: out output
// nodes, each reading all in input sources — the DAG of a dense linear
// layer, and a worst case for input reuse under small caches (every
// output needs the whole input resident).
func DenseLayer(in, out int) *dag.DAG {
	if in < 1 || out < 1 {
		panic("daggen: DenseLayer needs positive dimensions")
	}
	g := dag.New(in + out)
	for o := 0; o < out; o++ {
		g.SetLabel(dag.NodeID(in+o), fmt.Sprintf("y%d", o))
		for i := 0; i < in; i++ {
			g.AddEdge(dag.NodeID(i), dag.NodeID(in+o))
		}
	}
	return g
}

// CheckpointChain returns a chain of length n where every interval-th
// node also feeds the final sink — modeling checkpoint/rollback
// dependencies: the sink needs all checkpoints alive. The sink is the
// last node.
func CheckpointChain(n, interval int) *dag.DAG {
	if n < 2 || interval < 1 {
		panic("daggen: CheckpointChain needs n >= 2 and interval >= 1")
	}
	g := dag.New(n)
	for i := 0; i+1 < n-1; i++ {
		g.AddEdge(dag.NodeID(i), dag.NodeID(i+1))
	}
	sink := dag.NodeID(n - 1)
	g.AddEdge(dag.NodeID(n-2), sink)
	for i := interval - 1; i < n-2; i += interval {
		g.AddEdge(dag.NodeID(i), sink)
	}
	return g
}
