package gadgets

import (
	"fmt"

	"rbpebble/internal/dag"
)

// H2CSeparate is the Appendix A.2 variant of the H2C gadget: every
// protected node gets its own private root s and group B (nothing is
// shared), so deriving each protected node is an independent process
// that needs all R red pebbles and costs exactly MinTransferCost,
// regardless of when other protected nodes are derived.
type H2CSeparate struct {
	G *dag.DAG
	// S[v], B[v] and Starters[v] are the private gadget parts of v.
	S        map[dag.NodeID]dag.NodeID
	B        map[dag.NodeID][]dag.NodeID
	Starters map[dag.NodeID][3]dag.NodeID
}

// AttachH2CSeparate protects each listed source of g with a private H2C
// gadget sized for r red pebbles. It adds r+3 nodes per protected node.
func AttachH2CSeparate(g *dag.DAG, protect []dag.NodeID, r int) *H2CSeparate {
	if r < 2 {
		panic("gadgets: AttachH2CSeparate needs r >= 2")
	}
	h := &H2CSeparate{
		G:        g,
		S:        make(map[dag.NodeID]dag.NodeID, len(protect)),
		B:        make(map[dag.NodeID][]dag.NodeID, len(protect)),
		Starters: make(map[dag.NodeID][3]dag.NodeID, len(protect)),
	}
	for _, v := range protect {
		if !g.IsSource(v) {
			panic(fmt.Sprintf("gadgets: AttachH2CSeparate: node %d is not a source", v))
		}
		s := g.AddLabeledNode(fmt.Sprintf("h2c.s(%d)", v))
		b := g.AddNodes(r - 1)
		for i, bn := range b {
			g.SetLabel(bn, fmt.Sprintf("h2c.b%d(%d)", i, v))
			g.AddEdge(s, bn)
		}
		var us [3]dag.NodeID
		for i := 0; i < 3; i++ {
			u := g.AddLabeledNode(fmt.Sprintf("h2c.u%d(%d)", i+1, v))
			for _, bn := range b {
				g.AddEdge(bn, u)
			}
			us[i] = u
			g.AddEdge(u, v)
		}
		h.S[v] = s
		h.B[v] = b
		h.Starters[v] = us
	}
	return h
}

// Order returns the compute order deriving protected node v at minimal
// cost: its private s, B, then the three starters (the caller appends v
// itself).
func (h *H2CSeparate) Order(v dag.NodeID) []dag.NodeID {
	us, ok := h.Starters[v]
	if !ok {
		panic(fmt.Sprintf("gadgets: node %d is not protected", v))
	}
	order := make([]dag.NodeID, 0, len(h.B[v])+4)
	order = append(order, h.S[v])
	order = append(order, h.B[v]...)
	order = append(order, us[0], us[1], us[2])
	return order
}
