// Command rbproxy is the cluster front end for a fleet of rbserve
// replicas: it routes each POST /solve to the node that owns the
// request's canonical instance key on a consistent-hash ring (so
// repeated and isomorphic submissions of an instance warm the same
// node's interval cache), fails over along the ring when a node dies
// or drains, fans async-job polls out across the fleet, and merges the
// nodes' /metrics and /healthz into cluster-level views.
//
// Membership is dynamic: nodes started with -join register themselves
// on POST /cluster/join and renew a TTL lease; nodes that stop renewing
// expire off the ring. -members seeds static members that never expire
// (for fixed fleets without the join flow). On drain, departing nodes
// hand their cache off through POST /cluster/handoff, and live nodes
// replicate fresh entries via POST /cluster/replicate.
//
// Every request is traced (X-Rbpebble-Trace, minted here or adopted
// from the client) and the ID rides every proxy->node forward, so one
// trace correlates the proxy's routing/failover spans with the serving
// node's solve spans. GET /debug/solves merges the fleet's telemetry
// rings; GET /debug/trace/{id} resolves a trace anywhere in the fleet.
//
// Usage:
//
//	rbproxy -addr :8080 &
//	rbserve -addr :8081 -join 127.0.0.1:8080 &
//	rbserve -addr :8082 -join 127.0.0.1:8080 &
//	curl -s -X POST localhost:8080/solve -d '{
//	    "dag": {"nodes": 3, "edges": [[0,2],[1,2]]},
//	    "model": "oneshot", "r": 3, "deadline_ms": 1000}'
//	curl -s localhost:8080/healthz     # per-node cluster view
//	curl -s localhost:8080/metrics     # cluster_* + rbserve aggregates
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rbpebble/internal/cluster"
	"rbpebble/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		members     = flag.String("members", "", "comma-separated static rbserve replicas (host:port); optional when nodes use -join")
		vnodes      = flag.Int("vnodes", 64, "virtual nodes per member on the hash ring")
		probe       = flag.Duration("probe", 2*time.Second, "member health-probe interval")
		ttl         = flag.Duration("ttl", 15*time.Second, "membership lease TTL for joined nodes")
		maxBody     = flag.Int64("max-body", 64<<20, "largest accepted request body in bytes")
		maxNodes    = flag.Int("max-nodes", 100000, "largest accepted instance (guards the routing parse)")
		fwdLimit    = flag.Duration("forward-timeout", 60*time.Second, "per-attempt forward timeout (must exceed the nodes' max solve deadline)")
		retries     = flag.Int("retries", 3, "max attempts per idempotent forward (comm layer)")
		backoff     = flag.Duration("backoff", 50*time.Millisecond, "base retry backoff (doubles per attempt, jittered)")
		brkFails    = flag.Int("breaker-fails", 4, "consecutive transport failures that open a node's circuit breaker")
		brkCool     = flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker fails fast before a half-open trial")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant admission rate in solve items/second (0 = quotas disabled; tenant = X-Rbpebble-Tenant header)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant token-bucket burst in solve items (0 = one second's worth of -tenant-rate)")
		logFormat   = flag.String("log-format", "text", "structured log format: text or json")
		pprofAddr   = flag.String("pprof-addr", "", "listen address for net/http/pprof (empty = disabled)")
		traceCap    = flag.Int("trace-cap", 0, "retained routing traces for /debug/trace (0 = default 256)")
	)
	flag.Parse()

	logger := obs.NewLogger(*logFormat, os.Stderr)
	slog.SetDefault(logger)

	var memberList []string
	for _, m := range strings.Split(*members, ",") {
		if m = strings.TrimSpace(m); m != "" {
			memberList = append(memberList, m)
		}
	}

	p := cluster.NewProxy(cluster.ProxyConfig{
		Members:       memberList,
		VirtualNodes:  *vnodes,
		ProbeInterval: *probe,
		MemberTTL:     *ttl,
		MaxBodyBytes:  *maxBody,
		MaxNodes:      *maxNodes,
		TenantRate:    *tenantRate,
		TenantBurst:   *tenantBurst,
		TraceCap:      *traceCap,
		Logger:        logger,
		Client:        &http.Client{Timeout: *fwdLimit},
		Comm: cluster.CommConfig{
			AttemptTimeout:   *fwdLimit,
			MaxAttempts:      *retries,
			BackoffBase:      *backoff,
			BreakerThreshold: *brkFails,
			BreakerCooldown:  *brkCool,
		},
	})
	defer p.Close()
	srv := &http.Server{Addr: *addr, Handler: obs.AccessLog(logger, p.Handler())}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("rbproxy: listening",
		slog.String("addr", *addr), slog.Int("static_members", len(memberList)),
		slog.Duration("probe", *probe), slog.Duration("ttl", *ttl), slog.Int("vnodes", *vnodes))

	if *pprofAddr != "" {
		go func() {
			logger.Info("rbproxy: pprof listening", slog.String("addr", *pprofAddr))
			if err := http.ListenAndServe(*pprofAddr, obs.PprofMux()); err != nil {
				logger.Warn("rbproxy: pprof listener failed", slog.Any("err", err))
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "rbproxy:", err)
		os.Exit(1)
	case sig := <-sigc:
		logger.Info("rbproxy: shutting down", slog.String("signal", sig.String()))
		srv.Close()
	}
}
