// Package service is the rbserve HTTP layer: a JSON API over the
// anytime orchestrator with a canonical instance cache, singleflight
// deduplication of concurrent identical solves, a worker-pool job queue
// for async requests, per-request deadlines and operational metrics.
//
// Endpoints:
//
//	POST /solve            solve an instance (async=true enqueues a job)
//	GET  /solve/{id}       poll an async job
//	GET  /healthz          liveness probe
//	GET  /metrics          Prometheus-style counters
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rbpebble/internal/anytime"
	"rbpebble/internal/dag"
	"rbpebble/internal/instcache"
	"rbpebble/internal/pebble"
	"rbpebble/internal/solve"
)

// Config tunes a Server. Zero values select the defaults.
type Config struct {
	// Workers is the async job worker-pool size (default 2).
	Workers int
	// QueueDepth bounds the async job queue (default 64); beyond it
	// POST /solve with async=true returns 503.
	QueueDepth int
	// CacheSize bounds the solution LRU (default 256 entries).
	CacheSize int
	// DefaultDeadline applies when a request has no deadline_ms
	// (default 2s). MaxDeadline clamps requested deadlines (default 30s).
	DefaultDeadline, MaxDeadline time.Duration
	// SolveWorkers is forwarded to anytime.Options.Workers (parallel
	// expansion inside one solve; default 1, serial).
	SolveWorkers int
	// MaxNodes rejects instances above this size (default 100000). It
	// is enforced before the graph is materialized, so a tiny request
	// body declaring a huge node count cannot allocate.
	MaxNodes int
	// MaxBodyBytes caps the request body (default 64 MiB).
	MaxBodyBytes int64
	// KeepJobs bounds how many finished async jobs stay pollable
	// (default 1024; the oldest finished jobs are dropped beyond it).
	KeepJobs int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 100000
	}
	if c.KeepJobs <= 0 {
		c.KeepJobs = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// SolveRequest is the POST /solve body.
type SolveRequest struct {
	// DAG is the graph in the library's JSON form:
	// {"nodes": n, "edges": [[u,v], ...]}. It stays raw until the node
	// count has been checked against Config.MaxNodes, so a malicious
	// 50-byte body declaring two billion nodes never allocates them.
	DAG json.RawMessage `json:"dag"`
	// Model is base|oneshot|nodel|compcost (default oneshot);
	// EpsDenom is the compcost ε denominator (default 100).
	Model    string `json:"model,omitempty"`
	EpsDenom int    `json:"eps_denom,omitempty"`
	// R is the red-pebble limit (default Δ+1, the minimum feasible).
	R int `json:"r,omitempty"`
	// Convention flags (Appendix C).
	SourcesStartBlue bool `json:"sources_start_blue,omitempty"`
	SinksMustBeBlue  bool `json:"sinks_must_be_blue,omitempty"`
	// DeadlineMS is the solve budget in milliseconds (0 = server
	// default; clamped to the server maximum).
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// Async enqueues the solve and returns a job ID immediately.
	Async bool `json:"async,omitempty"`
	// IncludeTrace adds the verified move sequence to the response.
	IncludeTrace bool `json:"include_trace,omitempty"`
}

// MoveJSON is one trace move on the wire.
type MoveJSON struct {
	Op   string `json:"op"`
	Node int    `json:"node"`
}

// SolveResponse is the solve result on the wire: the certified
// [lower, upper] interval, incumbent cost and provenance.
type SolveResponse struct {
	Cost      float64    `json:"cost"`
	Upper     float64    `json:"upper"`
	Lower     float64    `json:"lower"`
	Gap       float64    `json:"gap"`
	Optimal   bool       `json:"optimal"`
	Source    string     `json:"source"`
	Cached    bool       `json:"cached"`
	Shared    bool       `json:"shared"`
	ElapsedMS float64    `json:"elapsed_ms"`
	Moves     []MoveJSON `json:"moves,omitempty"`
}

// JobResponse is the async job envelope.
type JobResponse struct {
	ID     string         `json:"id"`
	Status string         `json:"status"` // queued|running|done|error
	Error  string         `json:"error,omitempty"`
	Result *SolveResponse `json:"result,omitempty"`
}

type job struct {
	id string
	// The request is parsed once at submission; the worker reuses the
	// materialized problem instead of re-decoding the DAG JSON.
	p            solve.Problem
	deadline     time.Duration
	includeTrace bool

	mu     sync.Mutex
	status string
	resp   *SolveResponse
	errMsg string
}

func (j *job) snapshot() JobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobResponse{ID: j.id, Status: j.status, Error: j.errMsg, Result: j.resp}
}

func (j *job) set(status string, resp *SolveResponse, errMsg string) {
	j.mu.Lock()
	j.status, j.resp, j.errMsg = status, resp, errMsg
	j.mu.Unlock()
}

// metrics are the server's monotone counters (cache counters live in
// the cache itself).
type metrics struct {
	requests, solves, solveErrors                     atomic.Uint64
	jobsSubmitted, jobsDone, jobsFailed, jobsRejected atomic.Uint64
}

// Server is the rbserve HTTP service. Create with New, serve
// Handler(), stop with Close.
type Server struct {
	cfg   Config
	cache *instcache.Cache
	mux   *http.ServeMux
	queue chan *job
	wg    sync.WaitGroup

	jobMu    sync.Mutex
	jobs     map[string]*job
	jobOrder []string // submission order, for bounded retention
	jobSeq   atomic.Uint64

	m metrics

	// solveFn is the underlying solver, swappable in tests (e.g. to
	// gate concurrency deterministically).
	solveFn func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error)

	closed chan struct{}
	once   sync.Once
}

// New returns a started Server (its worker pool runs until Close).
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		jobs:    make(map[string]*job),
		solveFn: anytime.Solve,
		closed:  make(chan struct{}),
	}
	s.cache = instcache.New(s.cfg.CacheSize)
	s.queue = make(chan *job, s.cfg.QueueDepth)
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /solve", s.handleSolve)
	s.mux.HandleFunc("GET /solve/{id}", s.handleJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the worker pool. Jobs still queued stay in "queued"
// state; the queue channel is never closed, so submissions racing a
// shutdown get a 503 rather than a panic.
func (s *Server) Close() {
	s.once.Do(func() { close(s.closed) })
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case j := <-s.queue:
			j.set("running", nil, "")
			resp, err := s.runSolve(j.p, j.deadline, j.includeTrace)
			if err != nil {
				s.m.jobsFailed.Add(1)
				j.set("error", nil, err.Error())
				continue
			}
			s.m.jobsDone.Add(1)
			j.set("done", &resp, "")
		}
	}
}

// parseRequest validates a request into a Problem and clamped deadline.
// The graph is materialized only after its declared node count passes
// the MaxNodes guard.
func (s *Server) parseRequest(req SolveRequest) (solve.Problem, time.Duration, error) {
	if len(req.DAG) == 0 || string(req.DAG) == "null" {
		return solve.Problem{}, 0, errors.New("missing dag")
	}
	var head struct {
		Nodes int `json:"nodes"`
	}
	if err := json.Unmarshal(req.DAG, &head); err != nil {
		return solve.Problem{}, 0, fmt.Errorf("bad dag: %w", err)
	}
	if head.Nodes > s.cfg.MaxNodes {
		return solve.Problem{}, 0, fmt.Errorf("instance has %d nodes, limit %d", head.Nodes, s.cfg.MaxNodes)
	}
	g := new(dag.DAG)
	if err := json.Unmarshal(req.DAG, g); err != nil {
		return solve.Problem{}, 0, fmt.Errorf("bad dag: %w", err)
	}
	if g.N() > s.cfg.MaxNodes {
		return solve.Problem{}, 0, fmt.Errorf("instance has %d nodes, limit %d", g.N(), s.cfg.MaxNodes)
	}
	var model pebble.Model
	switch req.Model {
	case "", "oneshot":
		model = pebble.NewModel(pebble.Oneshot)
	case "base":
		model = pebble.NewModel(pebble.Base)
	case "nodel":
		model = pebble.NewModel(pebble.NoDel)
	case "compcost":
		eps := req.EpsDenom
		if eps == 0 {
			eps = 100
		}
		model = pebble.Model{Kind: pebble.CompCost, EpsDenom: eps}
	default:
		return solve.Problem{}, 0, fmt.Errorf("unknown model %q", req.Model)
	}
	r := req.R
	if r == 0 {
		r = pebble.MinFeasibleR(g)
	}
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	p := solve.Problem{
		G: g, Model: model, R: r,
		Convention: pebble.Convention{
			SourcesStartBlue: req.SourcesStartBlue,
			SinksMustBeBlue:  req.SinksMustBeBlue,
		},
	}
	return p, deadline, nil
}

// runSolve is the shared sync/async solve path for an already-parsed
// request: canonical key, cache and singleflight, then the anytime
// orchestrator.
func (s *Server) runSolve(p solve.Problem, deadline time.Duration, includeTrace bool) (SolveResponse, error) {
	start := time.Now()
	inst := instcache.Instance{G: p.G, Model: p.Model, R: p.R, Convention: p.Convention}
	key, perm := inst.Key()
	// The wait on another request's in-flight solve is bounded by this
	// request's own deadline (plus grace for the orchestrator's
	// non-interruptible heuristic phase) — joining a long-budget flight
	// must not stall a short-deadline client past its budget.
	waitCtx, cancelWait := context.WithTimeout(context.Background(), deadline+2*time.Second)
	defer cancelWait()
	val, hit, shared, err := s.cache.Do(waitCtx, key, func() (instcache.Value, error) {
		s.m.solves.Add(1)
		// The solve is detached from any single request: concurrent
		// identical requests share it, so one client disconnecting must
		// not cancel it for the rest.
		res, err := s.solveFn(context.Background(), p, anytime.Options{
			Budget:  deadline,
			Workers: s.cfg.SolveWorkers,
		})
		if err != nil {
			return instcache.Value{}, err
		}
		return instcache.Value{
			Moves:       instcache.ToCanonical(res.Solution.Trace.Moves, perm),
			UpperScaled: res.UpperScaled,
			LowerScaled: res.LowerScaled,
			Optimal:     res.Optimal,
			Source:      res.Source,
		}, nil
	})
	if err != nil {
		s.m.solveErrors.Add(1)
		return SolveResponse{}, err
	}

	moves := instcache.FromCanonical(val.Moves, perm)
	// Replay-verify on the requester's own graph: the response is
	// certified even when the moves crossed the cache through another
	// instance's labeling.
	tr := &pebble.Trace{Model: p.Model, R: p.R, Convention: p.Convention, Moves: moves}
	if _, err := tr.Run(p.G); err != nil {
		s.m.solveErrors.Add(1)
		return SolveResponse{}, fmt.Errorf("cached trace failed verification: %w", err)
	}

	scale := anytime.CostScale(p.Model)
	resp := SolveResponse{
		Cost:      float64(val.UpperScaled) / scale,
		Upper:     float64(val.UpperScaled) / scale,
		Lower:     float64(val.LowerScaled) / scale,
		Gap:       anytime.Gap(val.UpperScaled, val.LowerScaled),
		Optimal:   val.Optimal,
		Source:    val.Source,
		Cached:    hit,
		Shared:    shared,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	if includeTrace {
		resp.Moves = make([]MoveJSON, len(moves))
		for i, m := range moves {
			resp.Moves[i] = MoveJSON{Op: m.Kind.String(), Node: int(m.Node)}
		}
	}
	return resp, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	var req SolveRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	// Parse once; async jobs carry the materialized problem so the
	// worker never re-decodes the DAG JSON.
	p, deadline, err := s.parseRequest(req)
	if err != nil {
		if req.Async {
			httpError(w, http.StatusBadRequest, err.Error())
		} else {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
		}
		return
	}
	if req.Async {
		j := &job{
			id:           "job-" + strconv.FormatUint(s.jobSeq.Add(1), 10),
			p:            p,
			deadline:     deadline,
			includeTrace: req.IncludeTrace,
			status:       "queued",
		}
		select {
		case <-s.closed:
			httpError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		default:
		}
		select {
		case s.queue <- j:
		default:
			s.m.jobsRejected.Add(1)
			httpError(w, http.StatusServiceUnavailable, "job queue full")
			return
		}
		s.m.jobsSubmitted.Add(1)
		s.registerJob(j)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(j.snapshot())
		return
	}
	resp, err := s.runSolve(p, deadline, req.IncludeTrace)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			httpError(w, http.StatusServiceUnavailable,
				"an identical solve is in flight and exceeded this request's deadline; retry shortly")
			return
		}
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, resp)
}

func (s *Server) registerJob(j *job) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	for len(s.jobOrder) > s.cfg.KeepJobs {
		// Drop the oldest finished job; stop if the oldest is still live
		// (it must stay pollable).
		old := s.jobs[s.jobOrder[0]]
		if st := old.snapshot().Status; st != "done" && st != "error" {
			break
		}
		delete(s.jobs, s.jobOrder[0])
		s.jobOrder = s.jobOrder[1:]
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	s.jobMu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.jobMu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, j.snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]bool{"ok": true})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, kv := range []struct {
		name string
		v    uint64
	}{
		{"rbserve_requests_total", s.m.requests.Load()},
		{"rbserve_solves_total", s.m.solves.Load()},
		{"rbserve_solve_errors_total", s.m.solveErrors.Load()},
		{"rbserve_cache_hits_total", cs.Hits},
		{"rbserve_cache_misses_total", cs.Misses},
		{"rbserve_cache_evictions_total", cs.Evictions},
		{"rbserve_cache_entries", uint64(cs.Entries)},
		{"rbserve_singleflight_shared_total", cs.SharedFlights},
		{"rbserve_jobs_submitted_total", s.m.jobsSubmitted.Load()},
		{"rbserve_jobs_done_total", s.m.jobsDone.Load()},
		{"rbserve_jobs_failed_total", s.m.jobsFailed.Load()},
		{"rbserve_jobs_rejected_total", s.m.jobsRejected.Load()},
	} {
		fmt.Fprintf(w, "%s %d\n", kv.name, kv.v)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
