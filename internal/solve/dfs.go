package solve

import (
	"errors"
	"fmt"

	"rbpebble/internal/pebble"
)

// ExactDFSOptions configures the depth-first exact solver.
type ExactDFSOptions struct {
	// MaxVisits caps the number of node expansions (0 = 4,000,000).
	MaxVisits int
	// InitialBound, if nonzero, seeds the branch-and-bound with a known
	// achievable scaled cost (e.g. from TopoBelady). Otherwise the solver
	// computes one itself.
	InitialBound int64
}

// ErrVisitLimit is returned when ExactDFS exceeds its visit budget.
var ErrVisitLimit = errors.New("solve: DFS visit limit exceeded")

// ExactDFS finds a provably minimum-cost pebbling by depth-first branch
// and bound with per-state memoization. It is an independent second
// implementation of the exact optimum (the first being the best-first
// search in Exact) — the two cross-validate each other in the tests and
// their search behavior differs enough to serve as an ablation
// (best-first with a global frontier vs. depth-first with an upper
// bound).
//
// The recursion shares the best-first solver's machinery: moves are
// generated from the red frontier, each candidate is applied and undone
// on the single live state (no cloning), the memo table is keyed on the
// packed state encoding, and the admissible lower bound prunes branches
// whose cost-so-far plus bound cannot beat the incumbent.
//
// Supported models: oneshot and nodel, whose optimal pebblings have
// O(Δ·n) steps (Lemma 1), giving the recursion a sound depth bound. The
// base model admits no polynomial step bound; compcost admits one but
// its ε-granular costs make bound pruning ineffective — use Exact
// (best-first) for those models.
func ExactDFS(p Problem, opts ExactDFSOptions) (Solution, error) {
	if p.Model.Kind != pebble.Oneshot && p.Model.Kind != pebble.NoDel {
		return Solution{}, fmt.Errorf("solve: ExactDFS supports oneshot and nodel only, got %s", p.Model)
	}
	maxVisits := opts.MaxVisits
	if maxVisits == 0 {
		maxVisits = 4_000_000
	}
	start, err := pebble.NewState(p.G, p.Model, p.R, p.Convention)
	if err != nil {
		return Solution{}, err
	}

	// Seed the bound with an achievable solution so pruning bites early.
	bound := opts.InitialBound
	var bestMoves []pebble.Move
	if bound == 0 {
		seed, err := TopoBelady(p)
		if err != nil {
			return Solution{}, err
		}
		bound = seed.Result.Cost.Scaled(p.Model) + 1 // strict improvement wanted
		bestMoves = seed.Trace.Moves
	}

	// Depth bound from Lemma 1: optimal pebblings in these models have
	// O(Δ·n) steps; a loose constant keeps the bound sound.
	n := p.G.N()
	delta := p.G.MaxInDegree()
	if delta == 0 {
		delta = 1
	}
	factor := pebble.StepUpperBoundFactor(p.Model)
	maxDepth := factor*delta*n + n + 8

	c := newSearchCtx(p, ExactOptions{}, start)
	// memo.best[ref] = best scaled cost at which this state was ever
	// entered; re-entering at >= cost is pointless.
	memo := newStateTable(start.PackedWords(), 1024)
	visits := 0
	var limitErr error

	var moves []pebble.Move
	st := start // mutated in place by apply/undo along the recursion
	var rec func() bool
	rec = func() bool { // returns false on budget exhaustion
		if limitErr != nil {
			return false
		}
		visits++
		if visits > maxVisits {
			limitErr = fmt.Errorf("%w: %d", ErrVisitLimit, maxVisits)
			return false
		}
		cost := st.Cost().Scaled(p.Model)
		if cost >= bound {
			return true
		}
		if st.Complete() {
			bound = cost
			bestMoves = append([]pebble.Move(nil), moves...)
			return true
		}
		if st.Steps() >= maxDepth {
			return true
		}
		if h, dead := c.lb.estimate(st); dead || cost+h >= bound {
			return true // no completion from here can beat the incumbent
		}
		c.keyBuf = st.AppendPacked(c.keyBuf[:0])
		ref, _ := memo.lookupOrAdd(c.keyBuf, hashKey(c.keyBuf))
		if memo.best[ref] <= cost {
			return true
		}
		memo.best[ref] = cost

		// Generate this level's moves above the caller's live prefix;
		// deeper levels append beyond end and truncate back.
		base := len(c.moveBuf)
		c.appendMoves(st, c.keyBuf)
		end := len(c.moveBuf)
		ok := true
		for i := base; i < end; i++ {
			m := c.moveBuf[i]
			undo, err := st.ApplyForUndo(m)
			if err != nil {
				panic("solve: appendMoves emitted illegal move: " + err.Error())
			}
			moves = append(moves, m)
			ok = rec()
			moves = moves[:len(moves)-1]
			st.Undo(undo)
			if !ok {
				break
			}
		}
		c.moveBuf = c.moveBuf[:base]
		return ok
	}
	rec()
	if limitErr != nil {
		return Solution{}, limitErr
	}
	if bestMoves == nil {
		return Solution{}, errors.New("solve: DFS found no complete pebbling (infeasible instance?)")
	}
	tr := &pebble.Trace{Model: p.Model, R: p.R, Convention: p.Convention, Moves: bestMoves}
	return verify(p, tr), nil
}
