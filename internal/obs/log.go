package obs

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// NewLogger builds the daemons' structured logger: format "json"
// yields JSON lines, anything else human-readable text.
func NewLogger(format string, w io.Writer) *slog.Logger {
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, nil)
	}
	return slog.New(h)
}

// PprofMux builds the net/http/pprof mux the daemons serve on the
// dedicated -pprof-addr listener — a separate mux so profiling is
// never reachable on the serving port.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// statusWriter captures the response status for access logging while
// preserving http.Flusher — the batch path streams per-item results
// and must keep flushing through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog wraps h to emit one structured line per request: method,
// path, status, duration, and the trace ID the handler stamped on the
// response. Health, metrics, and debug probes log at Debug so steady
// -state scrape traffic doesn't drown solve lines.
func AccessLog(logger *slog.Logger, h http.Handler) http.Handler {
	if logger == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		level := slog.LevelInfo
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" || strings.HasPrefix(r.URL.Path, "/debug/") {
			level = slog.LevelDebug
		}
		logger.LogAttrs(r.Context(), level, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Duration("dur", time.Since(start)),
			slog.String("trace", sw.Header().Get(TraceHeader)),
		)
	})
}
