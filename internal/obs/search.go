package obs

// SearchSnapshot is the wire form of one live engine-introspection
// sample: what a running exact search looks like right now. The solve
// layer emits its own internal snapshot type; the anytime orchestrator
// converts to this shape so the service, proxy, CLI and JSONL sinks
// share one JSON schema. Fields an engine cannot observe are zero, and
// f-valued fields use -1 for "none".
type SearchSnapshot struct {
	// Seq numbers the snapshots of one solve (strictly increasing).
	Seq int `json:"seq"`
	// Engine names the engine that produced the sample: astar,
	// sync-rounds, async-hda, ida-star, branch-and-bound.
	Engine string `json:"engine"`
	// ElapsedMS is the wall time since the engine started.
	ElapsedMS int64 `json:"elapsed_ms"`
	// Expanded is the cumulative state-expansion count.
	Expanded int64 `json:"expanded"`
	// Rate is the expansion rate (states/s) over the sampling window.
	Rate float64 `json:"expansion_rate"`
	// Pushed / Distinct are open-list insertions and distinct states.
	Pushed   int64 `json:"pushed,omitempty"`
	Distinct int64 `json:"distinct,omitempty"`
	// LowerBound is the certified scaled lower bound proven so far.
	LowerBound int64 `json:"lower_bound"`
	// FrontierSize is the total open-list length; FrontierF/FrontierG
	// the cheapest open entry's priority and path cost (-1: none).
	FrontierSize int64 `json:"frontier_size"`
	FrontierF    int64 `json:"frontier_f"`
	FrontierG    int64 `json:"frontier_g"`
	// OpenBuckets is the open queue's per-f histogram (serial engine).
	OpenBuckets []SearchBucket `json:"open_buckets,omitempty"`
	// TableStates/TableBytes/TableLoad describe the visited-state
	// tables (count, backing bytes, probe load factor).
	TableStates int64   `json:"table_states"`
	TableBytes  int64   `json:"table_bytes"`
	TableLoad   float64 `json:"table_load,omitempty"`
	// Workers is the per-worker breakdown (parallel engines).
	Workers []SearchWorker `json:"workers,omitempty"`
	// SafraSent/SafraRecv are the async termination protocol's global
	// proposal counters (their difference is the in-flight mass).
	SafraSent int64 `json:"safra_sent,omitempty"`
	SafraRecv int64 `json:"safra_recv,omitempty"`
	// Threshold and Pass track the IDA* threshold schedule.
	Threshold int64 `json:"threshold,omitempty"`
	Pass      int   `json:"pass,omitempty"`
}

// SearchBucket is one f-level of the open queue.
type SearchBucket struct {
	F     int64 `json:"f"`
	Count int   `json:"count"`
}

// SearchWorker is one parallel worker's slot in a SearchSnapshot.
type SearchWorker struct {
	ID           int   `json:"id"`
	Expanded     int64 `json:"expanded"`
	Pushed       int64 `json:"pushed"`
	HeapSize     int64 `json:"heap_size"`
	HeapMinF     int64 `json:"heap_min_f"`
	Floor        int64 `json:"floor"`
	MailboxDepth int64 `json:"mailbox_depth"`
	TableStates  int64 `json:"table_states"`
	TableBytes   int64 `json:"table_bytes"`
	Passive      bool  `json:"passive,omitempty"`
}
