package solve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The snapshot suite drives every exact engine with a 1ns sampling
// cadence (so each emission gate fires) and checks the introspection
// stream's invariants: at least two snapshots on a non-trivial
// instance, non-decreasing expansion counts, internally consistent
// table/frontier numbers, and silence after the solve returns.

// snapshotRun collects the snapshots emitted while run executes. Any
// snapshot arriving after run returns fails the test.
type snapshotRun struct {
	mu    sync.Mutex
	snaps []ExactProgress
	done  atomic.Bool
}

func (c *snapshotRun) listener(t *testing.T) func(ExactProgress) {
	return func(pr ExactProgress) {
		if c.done.Load() {
			t.Error("snapshot emitted after the solve returned")
		}
		c.mu.Lock()
		c.snaps = append(c.snaps, pr)
		c.mu.Unlock()
	}
}

// checkStream validates the engine-independent invariants and returns
// the snapshots for engine-specific checks.
func (c *snapshotRun) checkStream(t *testing.T, engine string, finalExpanded int, finalTableBytes int64) []ExactProgress {
	t.Helper()
	snaps := c.snaps
	if len(snaps) < 2 {
		t.Fatalf("got %d snapshots, want >= 2", len(snaps))
	}
	prev := -1
	for i, sn := range snaps {
		if sn.Engine != engine {
			t.Errorf("snapshot %d: engine %q, want %q", i, sn.Engine, engine)
		}
		if sn.Expanded < prev {
			t.Errorf("snapshot %d: expanded %d < previous %d (not monotone)", i, sn.Expanded, prev)
		}
		prev = sn.Expanded
		if sn.Elapsed <= 0 {
			t.Errorf("snapshot %d: non-positive elapsed %v", i, sn.Elapsed)
		}
		if sn.Rate < 0 {
			t.Errorf("snapshot %d: negative rate %f", i, sn.Rate)
		}
		if sn.FrontierF < -1 || sn.FrontierG < -1 {
			t.Errorf("snapshot %d: frontier (%d, %d) below the -1 sentinel", i, sn.FrontierF, sn.FrontierG)
		}
		if sn.TableLoad < 0 || sn.TableLoad > 1 {
			t.Errorf("snapshot %d: table load %f outside [0, 1]", i, sn.TableLoad)
		}
	}
	last := snaps[len(snaps)-1]
	if last.Expanded > finalExpanded {
		t.Errorf("last snapshot expanded %d > final stats %d", last.Expanded, finalExpanded)
	}
	if last.TableBytes <= 0 || last.TableBytes > finalTableBytes {
		t.Errorf("last snapshot table bytes %d inconsistent with final stats %d", last.TableBytes, finalTableBytes)
	}
	return snaps
}

func TestSnapshotsSerialAStar(t *testing.T) {
	var c snapshotRun
	var stats ExactStats
	_, err := Exact(pyramid5R4(), ExactOptions{
		Progress:      c.listener(t),
		ProgressEvery: time.Nanosecond,
		Stats:         &stats,
	})
	c.done.Store(true)
	if err != nil {
		t.Fatal(err)
	}
	snaps := c.checkStream(t, "astar", stats.Expanded, stats.TableBytes)
	for i, sn := range snaps {
		if sn.OpenSize > 0 {
			if sn.FrontierF < 0 {
				t.Errorf("snapshot %d: open queue non-empty but no frontier f", i)
			}
			if len(sn.OpenBuckets) == 0 {
				t.Errorf("snapshot %d: open queue non-empty but no histogram", i)
				continue
			}
			sum := 0
			for _, bk := range sn.OpenBuckets {
				sum += bk.Count
			}
			if len(sn.OpenBuckets) < maxSnapshotBuckets && sum != sn.OpenSize {
				t.Errorf("snapshot %d: histogram sums to %d, open size %d", i, sum, sn.OpenSize)
			}
			if sn.OpenBuckets[0].F != sn.FrontierF {
				t.Errorf("snapshot %d: first bucket f %d != frontier f %d", i, sn.OpenBuckets[0].F, sn.FrontierF)
			}
		}
		if sn.Distinct <= 0 {
			t.Errorf("snapshot %d: no distinct states", i)
		}
	}
}

func TestSnapshotsSyncRounds(t *testing.T) {
	var c snapshotRun
	var stats ExactStats
	_, err := Exact(pyramid5R4(), ExactOptions{
		Parallel:      2,
		ParallelAlgo:  ParallelSyncRounds,
		Progress:      c.listener(t),
		ProgressEvery: time.Nanosecond,
		Stats:         &stats,
	})
	c.done.Store(true)
	if err != nil {
		t.Fatal(err)
	}
	snaps := c.checkStream(t, "sync-rounds", stats.Expanded, stats.TableBytes)
	for i, sn := range snaps {
		if len(sn.Workers) != 2 {
			t.Fatalf("snapshot %d: %d workers, want 2", i, len(sn.Workers))
		}
		distinct, open, bytes := 0, 0, int64(0)
		for _, wk := range sn.Workers {
			distinct += wk.TableCount
			open += wk.OpenSize
			bytes += wk.TableBytes
		}
		if distinct != sn.Distinct || open != sn.OpenSize || bytes != sn.TableBytes {
			t.Errorf("snapshot %d: worker sums (%d, %d, %d) != aggregates (%d, %d, %d)",
				i, distinct, open, bytes, sn.Distinct, sn.OpenSize, sn.TableBytes)
		}
	}
}

func TestSnapshotsAsyncHDA(t *testing.T) {
	var c snapshotRun
	var stats ExactStats
	_, err := Exact(pyramid5R4(), ExactOptions{
		Parallel:      2,
		Progress:      c.listener(t),
		ProgressEvery: time.Nanosecond,
		Stats:         &stats,
	})
	c.done.Store(true)
	if err != nil {
		t.Fatal(err)
	}
	snaps := c.checkStream(t, "async-hda", stats.Expanded, stats.TableBytes)
	sawWorkerData := false
	for i, sn := range snaps {
		if len(sn.Workers) != 2 {
			t.Fatalf("snapshot %d: %d workers, want 2", i, len(sn.Workers))
		}
		for _, wk := range sn.Workers {
			if wk.MailboxDepth < 0 {
				t.Errorf("snapshot %d: worker %d negative mailbox depth %d", i, wk.ID, wk.MailboxDepth)
			}
			if wk.HeapMinF < -1 || wk.Floor < -1 {
				t.Errorf("snapshot %d: worker %d heap/floor (%d, %d) below the -1 sentinel",
					i, wk.ID, wk.HeapMinF, wk.Floor)
			}
			if wk.TableBytes > 0 || wk.Expanded > 0 {
				sawWorkerData = true
			}
		}
		if sn.SafraSent < 0 || sn.SafraRecv < 0 {
			t.Errorf("snapshot %d: negative safra counters (%d, %d)", i, sn.SafraSent, sn.SafraRecv)
		}
	}
	if !sawWorkerData {
		t.Error("no snapshot carried per-worker heap/table data")
	}
}

func TestSnapshotsIDAStar(t *testing.T) {
	var c snapshotRun
	var stats ExactDFSStats
	_, err := ExactDFS(pyramid5R4(), ExactDFSOptions{
		Algorithm:     DFSIDAStar,
		Search:        c.listener(t),
		ProgressEvery: time.Nanosecond,
		Stats:         &stats,
	})
	c.done.Store(true)
	if err != nil {
		t.Fatal(err)
	}
	snaps := c.checkStream(t, "ida-star", stats.Visits, int64(stats.TableBytes))
	for i, sn := range snaps {
		if sn.Threshold <= 0 {
			t.Errorf("snapshot %d: non-positive IDA* threshold %d", i, sn.Threshold)
		}
		if sn.Pass < 1 {
			t.Errorf("snapshot %d: pass %d < 1", i, sn.Pass)
		}
	}
}

// TestSnapshotsNilListener pins the zero-overhead contract: without a
// Progress listener no sampler is created and the solve runs exactly as
// before (this is also the configuration the benchmark guard measures).
func TestSnapshotsNilListener(t *testing.T) {
	var stats ExactStats
	if _, err := Exact(pyramid5R4(), ExactOptions{Stats: &stats, ProgressEvery: time.Nanosecond}); err != nil {
		t.Fatal(err)
	}
	if stats.Expanded == 0 {
		t.Fatal("solve did not run")
	}
}

// TestNilListenerAllocGuard pins the contract in allocation terms: a
// listener-less serial A* solve must stay at the committed baseline
// (the BENCH_solver.json fft(3) R=3 row holds 429 allocs/op; the
// pyramid(5) R=4 proxy measured here sits at ~263). The bound has
// headroom for runtime noise, not for a regression that attaches
// sampling machinery to runs nobody is watching.
func TestNilListenerAllocGuard(t *testing.T) {
	p := pyramid5R4()
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Exact(p, ExactOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 400 {
		t.Errorf("nil-listener serial A* allocated %.0f times/op, want <= 400 (baseline ~263)", allocs)
	}
}
