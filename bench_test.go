// Root benchmark harness: one benchmark per table and figure of the
// paper. Each bench regenerates its artifact via the experiments package
// (reporting key measurements as custom metrics) so that
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. The rendered tables themselves come
// from `go run ./cmd/rbexp`.
package rbpebble_test

import (
	"strconv"
	"testing"

	"rbpebble/internal/experiments"
)

func benchReport(b *testing.B, run func() *experiments.Report) {
	b.Helper()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = run()
	}
	if rep == nil || len(rep.Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
	b.ReportMetric(float64(len(rep.Rows)), "rows")
}

// BenchmarkTable1 regenerates the per-model operation cost table.
func BenchmarkTable1(b *testing.B) {
	benchReport(b, experiments.Table1)
}

// BenchmarkTable2 regenerates the measured model-property summary.
func BenchmarkTable2(b *testing.B) {
	benchReport(b, experiments.Table2)
}

// BenchmarkFig1CD regenerates the Figure 1 CD-gadget cost claim
// (free at R', Ω(h) with one pebble fewer), using the exact solver.
func BenchmarkFig1CD(b *testing.B) {
	benchReport(b, func() *experiments.Report {
		return experiments.Fig1CD(experiments.DefaultFig1Params())
	})
}

// BenchmarkFig2H2C regenerates the Figure 2 H2C inherent-cost claim
// (exact optimum = 4 transfers).
func BenchmarkFig2H2C(b *testing.B) {
	benchReport(b, experiments.Fig2H2C)
}

// BenchmarkFig4Tradeoff regenerates the Figure 3/4 time-memory tradeoff
// diagram across all four models, and reports the measured maximal drop
// per added red pebble (the paper's 2n).
func BenchmarkFig4Tradeoff(b *testing.B) {
	p := experiments.DefaultTradeoffParams()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig4Tradeoff(p)
	}
	// Column 2 is the oneshot curve; the drop between the first two rows
	// approximates 2n.
	first, _ := strconv.Atoi(rep.Rows[0][2])
	second, _ := strconv.Atoi(rep.Rows[1][2])
	b.ReportMetric(float64(first-second), "drop/pebble")
	b.ReportMetric(float64(2*p.Chain), "predicted")
}

// BenchmarkThm2HamPath regenerates the Theorem 2 NP-hardness table:
// reduction thresholds vs the Hamiltonian Path oracle.
func BenchmarkThm2HamPath(b *testing.B) {
	benchReport(b, func() *experiments.Report {
		return experiments.Thm2HamPath(experiments.DefaultThm2Params())
	})
}

// BenchmarkThm3VertexCover regenerates the Theorem 3 inapproximability
// slope (cost = 2k'·|VC| + O(N²)).
func BenchmarkThm3VertexCover(b *testing.B) {
	benchReport(b, func() *experiments.Report {
		return experiments.Thm3VertexCover(experiments.DefaultThm3Params())
	})
}

// BenchmarkThm4Greedy regenerates the Figure 8 greedy-vs-optimal
// separation and reports the largest measured ratio.
func BenchmarkThm4Greedy(b *testing.B) {
	p := experiments.DefaultThm4Params()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Thm4Greedy(p)
	}
	last := rep.Rows[len(rep.Rows)-1]
	ratio, _ := strconv.ParseFloat(last[len(last)-1], 64)
	b.ReportMetric(ratio, "greedy/opt")
}

// BenchmarkLemma1Length regenerates the optimal-pebbling-length bound
// measurements.
func BenchmarkLemma1Length(b *testing.B) {
	benchReport(b, func() *experiments.Report {
		return experiments.Lemma1Length(experiments.DefaultLemma1Params())
	})
}

// BenchmarkAppendixCConventions regenerates the convention-shift table.
func BenchmarkAppendixCConventions(b *testing.B) {
	benchReport(b, experiments.Conventions)
}

// BenchmarkAblationEviction compares eviction policies on HPC workloads.
func BenchmarkAblationEviction(b *testing.B) {
	benchReport(b, experiments.AblationEviction)
}

// BenchmarkAblationExactPruning measures the exact solver's pruning.
func BenchmarkAblationExactPruning(b *testing.B) {
	benchReport(b, experiments.AblationExactPruning)
}

// BenchmarkAblationGreedyRules compares the §8 greedy rule variants.
func BenchmarkAblationGreedyRules(b *testing.B) {
	benchReport(b, experiments.AblationGreedyRules)
}

// BenchmarkExtensionMultilevel regenerates the multi-level hierarchy
// extension table (related work [4]).
func BenchmarkExtensionMultilevel(b *testing.B) {
	benchReport(b, experiments.Multilevel)
}

// BenchmarkExtensionParallel regenerates the multi-processor pebbling
// extension table (related work [8]).
func BenchmarkExtensionParallel(b *testing.B) {
	benchReport(b, experiments.ParallelPebbling)
}
