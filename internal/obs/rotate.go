package obs

import (
	"fmt"
	"os"
	"strconv"
	"sync"
)

// RotatingWriter is a size-rotated append-only file sink for the JSONL
// logs (-telemetry-log, -search-log): when the current file would
// outgrow maxBytes, it is renamed to path.1 (shifting path.1 -> path.2
// and so on, dropping the oldest beyond keep) and a fresh file is
// opened. A long-running node's search telemetry is unbounded by
// construction; rotation bounds its disk footprint instead of trusting
// an operator to remember logrotate. Safe for concurrent use.
type RotatingWriter struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	keep     int
	f        *os.File
	size     int64
}

// NewRotatingWriter opens (or appends to) path with rotation at
// maxBytes, keeping up to keep rotated files (keep < 1 is clamped to
// 1). maxBytes <= 0 disables rotation — the writer degrades to a plain
// append sink.
func NewRotatingWriter(path string, maxBytes int64, keep int) (*RotatingWriter, error) {
	if keep < 1 {
		keep = 1
	}
	w := &RotatingWriter{path: path, maxBytes: maxBytes, keep: keep}
	if err := w.open(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *RotatingWriter) open() error {
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	w.f, w.size = f, st.Size()
	return nil
}

// Write appends p, rotating first when the write would push the
// current file past maxBytes. A single line larger than maxBytes still
// lands whole in a fresh file — lines are never split across files.
func (w *RotatingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.maxBytes > 0 && w.size > 0 && w.size+int64(len(p)) > w.maxBytes {
		if err := w.rotate(); err != nil {
			return 0, fmt.Errorf("rotate %s: %w", w.path, err)
		}
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

// rotate shifts the kept generations up by one and reopens a fresh
// current file. Rename errors for missing older generations are
// ignored (the chain naturally has gaps until it fills).
func (w *RotatingWriter) rotate() error {
	w.f.Close()
	os.Remove(w.path + "." + strconv.Itoa(w.keep))
	for i := w.keep - 1; i >= 1; i-- {
		os.Rename(w.path+"."+strconv.Itoa(i), w.path+"."+strconv.Itoa(i+1))
	}
	if err := os.Rename(w.path, w.path+".1"); err != nil {
		return err
	}
	return w.open()
}

// Close closes the current file.
func (w *RotatingWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
