// Package benchharness is the machine-readable benchmark recorder
// shared by the solver and anytime benchmark suites. Each suite's
// TestMain delegates to Main; when the -benchjson flag names a file,
// the collected records are merged into it by benchmark name (so
// several packages can refresh one artifact — run them with -p 1 to
// serialize the read-modify-write):
//
//	go test ./internal/solve ./internal/anytime -p 1 -bench . \
//	    -benchtime 1x -benchjson "$PWD"/BENCH_solver.json
//
// (The flag is named -benchjson because the go tool claims -json for
// its own test2json stream.)
package benchharness

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
)

// out, when set, receives the merged record array after the run.
var out = flag.String("benchjson", "", "write machine-readable benchmark results to this JSON file (merged by name)")

// Record is one benchmark's machine-readable result row.
type Record struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// BytesPerOp is the heap allocated per op (runtime TotalAlloc
	// delta: cumulative allocation traffic, not peak residency).
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	// PeakTableBytes is the solver visited-table footprint (probe slots
	// plus arena capacity, summed over parallel shards) at search end —
	// the peak, since the tables only grow within a run. Solver rows
	// only.
	PeakTableBytes int64 `json:"peak_table_bytes,omitempty"`
	StatesExpanded int   `json:"states_expanded,omitempty"`
	DistinctStates int   `json:"distinct_states,omitempty"`
	Visits         int   `json:"visits,omitempty"`
	OptimalScaled  int64 `json:"optimal_scaled_cost,omitempty"`
	// Anytime rows: the certified interval and whether it closed.
	UpperScaled int64 `json:"upper_scaled_cost,omitempty"`
	LowerScaled int64 `json:"lower_scaled_cost,omitempty"`
	Optimal     bool  `json:"optimal,omitempty"`
	// Interval-cache convergence rows: the certified relative gap after
	// the first deadline-limited solve and after a second one
	// warm-started from the first (the cross-request convergence the
	// interval cache buys).
	GapFirst  float64 `json:"gap_first_solve,omitempty"`
	GapSecond float64 `json:"gap_second_solve,omitempty"`
	// Batched-request-plane rows: items per batch, canonical-class
	// solves the batch actually performed, and the amortized per-item
	// latency against the no-batching baseline (one cold node per
	// request — the fleet shape without a batch plane, where no request
	// shares another's canonicalization or solve).
	BatchItems          int     `json:"batch_items,omitempty"`
	BatchSolves         int     `json:"batch_solves,omitempty"`
	NsPerItemBatch      float64 `json:"ns_per_item_batch,omitempty"`
	NsPerItemSequential float64 `json:"ns_per_item_sequential,omitempty"`
}

var records []Record

// Baseline is a snapshot of the runtime's cumulative allocation
// counters, taken before a benchmark's loop (see Before) and diffed by
// Capture into allocs/op and bytes/op.
type Baseline struct {
	mallocs uint64
	bytes   uint64
}

// Capture records one benchmark's metrics (ns/op from the timer,
// allocs/op and bytes/op from the runtime's allocation counters since
// base). The harness invokes each benchmark function several times
// while calibrating b.N; only the latest (converged) invocation is
// kept.
func Capture(b *testing.B, base Baseline, rec Record) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rec.Name = b.Name()
	rec.NsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	rec.AllocsPerOp = float64(ms.Mallocs-base.mallocs) / float64(b.N)
	rec.BytesPerOp = float64(ms.TotalAlloc-base.bytes) / float64(b.N)
	for i := range records {
		if records[i].Name == rec.Name {
			records[i] = rec
			return
		}
	}
	records = append(records, rec)
}

// Before snapshots the runtime's cumulative allocation counters (pass
// to Capture as the baseline).
func Before() Baseline {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Baseline{mallocs: ms.Mallocs, bytes: ms.TotalAlloc}
}

// Main runs the tests and flushes the records; call it from TestMain.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 && *out != "" && len(records) > 0 {
		if err := flush(*out); err != nil {
			os.Stderr.WriteString("benchjson: " + err.Error() + "\n")
			code = 1
		}
	}
	os.Exit(code)
}

// flush merges the collected records into path: rows already present
// keep their position and are replaced by name; new rows append.
func flush(path string) error {
	var merged []Record
	if data, err := os.ReadFile(path); err == nil {
		// A malformed existing artifact is overwritten rather than
		// failing the refresh.
		_ = json.Unmarshal(data, &merged)
	}
	for _, rec := range records {
		replaced := false
		for i := range merged {
			if merged[i].Name == rec.Name {
				merged[i] = rec
				replaced = true
				break
			}
		}
		if !replaced {
			merged = append(merged, rec)
		}
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
