package solve

// heapEntry is one open-list entry of the best-first search: f is the
// priority (g plus the admissible lower bound; equal to g when the
// heuristic is off), g the exact scaled path cost, and node the index of
// the searchNode that reached the state.
type heapEntry struct {
	f    int64
	g    int64
	node int32
}

// The open list is ordered by f with ties broken toward larger g
// (deeper states first), which crosses the zero-cost compute/delete
// plateaus of the base model sooner.
func entryLess(x, y heapEntry) bool {
	if x.f != y.f {
		return x.f < y.f
	}
	return x.g > y.g
}

// bqMaxF bounds the direct-indexed f range of the bucket queue.
// Scaled f values are tiny integers for every model at sane cost
// scales (tens to a few thousand); anything at or beyond this bound
// (pathological compcost EpsDenom choices) spills into a comparison
// heap so memory stays bounded by the frontier, never by the cost
// range.
const bqMaxF = 1 << 15

// bucketQueue is the open list of the best-first engines: a bucketed
// two-level f-ordered queue exploiting that scaled costs are small
// integers. The first level indexes buckets directly by f; the second
// level orders each bucket's entries by g (max-heap over (g, node)
// pairs — f is implicit, so stored entries are a third smaller than
// full heapEntry records). Pushing is O(1) plus a sift within one
// small bucket; popping advances a monotone minimum-bucket cursor
// (pushed entries can move it backward, so the cursor is a hint, not
// an assumption). Compared to the single binary heap over the whole
// frontier this turns every open-list operation from O(log frontier)
// on a pointer-chasing global array into O(log bucket) on the few
// cache lines of the one active f-level — and on the zero-cost
// plateaus that dominate these searches the active bucket is exactly
// the plateau being dived.
type bucketQueue struct {
	bks []gHeap // bks[f], grown to the largest f seen (< bqMaxF)
	cur int     // smallest possibly-nonempty bucket index
	n   int     // total entries, overflow included

	// spare recycles drained buckets' backing arrays. The frontier mass
	// moves through f levels as the search advances, so without
	// recycling every level would retain its own peak capacity — the
	// sum of per-level peaks approaches the total push count, far above
	// the live frontier. A drained bucket donates its array here and
	// the next growing bucket adopts the largest donation, so retained
	// memory tracks the peak live frontier and steady-state pushes
	// allocate nothing.
	spare [][]gEntry

	// over holds entries with f >= bqMaxF, ordered by entryLess. The
	// bucketed range always has priority, so the overflow heap is only
	// consulted when every bucket is empty.
	over []heapEntry
}

// bqMaxSpare bounds the recycling pool (a handful of f levels are ever
// active at once; anything beyond that is kept only if bigger than
// what the pool already holds).
const bqMaxSpare = 8

// gEntry is one second-level entry; its f is the index of the bucket
// holding it.
type gEntry struct {
	g    int64
	node int32
}

// gHeap is a max-heap on g (deeper states first within an f level).
type gHeap struct {
	a []gEntry
}

func (h *gHeap) push(e gEntry) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[i].g <= h.a[p].g {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *gHeap) pop() gEntry {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && h.a[l].g > h.a[big].g {
			big = l
		}
		if r < last && h.a[r].g > h.a[big].g {
			big = r
		}
		if big == i {
			break
		}
		h.a[i], h.a[big] = h.a[big], h.a[i]
		i = big
	}
	return top
}

func (q *bucketQueue) len() int { return q.n }

func (q *bucketQueue) push(e heapEntry) {
	q.n++
	if e.f >= bqMaxF {
		q.overPush(e)
		return
	}
	f := int(e.f)
	for len(q.bks) <= f {
		q.bks = append(q.bks, gHeap{})
	}
	if q.bks[f].a == nil && len(q.spare) > 0 {
		// Adopt the largest recycled array (donations are kept sorted
		// by capacity, largest last).
		last := len(q.spare) - 1
		q.bks[f].a = q.spare[last]
		q.spare[last] = nil
		q.spare = q.spare[:last]
	}
	q.bks[f].push(gEntry{g: e.g, node: e.node})
	if f < q.cur {
		q.cur = f
	}
}

// release donates an emptied bucket's backing array to the recycling
// pool, keeping the pool sorted by capacity and bounded (the smallest
// donation is dropped on overflow).
func (q *bucketQueue) release(f int) {
	a := q.bks[f].a[:0]
	q.bks[f].a = nil
	i := len(q.spare)
	if i == bqMaxSpare {
		if cap(a) <= cap(q.spare[0]) {
			return
		}
		copy(q.spare, q.spare[1:])
		i--
		q.spare = q.spare[:i]
	}
	for i > 0 && cap(q.spare[i-1]) > cap(a) {
		i--
	}
	q.spare = append(q.spare, nil)
	copy(q.spare[i+1:], q.spare[i:])
	q.spare[i] = a
}

// settle advances the minimum-bucket cursor to the first nonempty
// bucket (callers guarantee len() > 0; a cursor beyond the bucket range
// means the minimum lives in the overflow heap).
func (q *bucketQueue) settle() {
	for q.cur < len(q.bks) && len(q.bks[q.cur].a) == 0 {
		q.cur++
	}
}

// top returns the minimum entry's (f, g) without removing it. Callers
// must ensure len() > 0.
func (q *bucketQueue) top() (f, g int64) {
	q.settle()
	if q.cur < len(q.bks) {
		return int64(q.cur), q.bks[q.cur].a[0].g
	}
	return q.over[0].f, q.over[0].g
}

// pop removes and returns the minimum entry (smallest f, largest g
// within it). Callers must ensure len() > 0.
func (q *bucketQueue) pop() heapEntry {
	q.settle()
	q.n--
	if q.cur < len(q.bks) {
		e := q.bks[q.cur].pop()
		if len(q.bks[q.cur].a) == 0 && q.bks[q.cur].a != nil {
			q.release(q.cur)
		}
		return heapEntry{f: int64(q.cur), g: e.g, node: e.node}
	}
	return q.overPop()
}

func (q *bucketQueue) overPush(e heapEntry) {
	q.over = append(q.over, e)
	i := len(q.over) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entryLess(q.over[i], q.over[p]) {
			break
		}
		q.over[p], q.over[i] = q.over[i], q.over[p]
		i = p
	}
}

func (q *bucketQueue) overPop() heapEntry {
	top := q.over[0]
	last := len(q.over) - 1
	q.over[0] = q.over[last]
	q.over = q.over[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && entryLess(q.over[l], q.over[small]) {
			small = l
		}
		if r < last && entryLess(q.over[r], q.over[small]) {
			small = r
		}
		if small == i {
			break
		}
		q.over[i], q.over[small] = q.over[small], q.over[i]
		i = small
	}
	return top
}
