package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rbpebble/internal/anytime"
	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/solve"
)

// permuted returns an isomorphic copy of g under a seeded random node
// permutation — canonically identical, differently labeled.
func permuted(g *dag.DAG, seed int64) *dag.DAG {
	perm := rand.New(rand.NewSource(seed)).Perm(g.N())
	h := dag.New(g.N())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Succs(dag.NodeID(v)) {
			h.AddEdge(dag.NodeID(perm[v]), dag.NodeID(perm[w]))
		}
	}
	return h
}

func postBatch(t *testing.T, ts *httptest.Server, body string) (int, BatchResponse, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/solve/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var br BatchResponse
	json.Unmarshal(buf.Bytes(), &br)
	return resp.StatusCode, br, buf.String()
}

func batchBody(t *testing.T, deadlineMS int, graphs ...*dag.DAG) string {
	t.Helper()
	items := make([]string, len(graphs))
	for i, g := range graphs {
		items[i] = fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, g))
	}
	return fmt.Sprintf(`{"items":[%s],"deadline_ms":%d}`, strings.Join(items, ","), deadlineMS)
}

// TestBatchDedupFunnelsToOneSolve: a batch of isomorphic relabelings
// performs exactly one canonicalization-class solve; every item still
// gets its own certified, replay-verified answer, streamed in request
// order.
func TestBatchDedupFunnelsToOneSolve(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	base := daggen.Pyramid(4)
	graphs := []*dag.DAG{base}
	for i := 1; i < 8; i++ {
		graphs = append(graphs, permuted(base, int64(i)))
	}
	code, br, raw := postBatch(t, ts, batchBody(t, 2000, graphs...))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if len(br.Items) != 8 {
		t.Fatalf("got %d items, want 8: %s", len(br.Items), raw)
	}
	var want float64
	for i, item := range br.Items {
		if item.Index != i {
			t.Fatalf("item %d streamed out of order (index %d)", i, item.Index)
		}
		if item.Error != "" || item.Result == nil {
			t.Fatalf("item %d failed: %+v", i, item)
		}
		if !item.Result.Optimal {
			t.Fatalf("item %d not optimal: %+v", i, item.Result)
		}
		if i == 0 {
			want = item.Result.Cost
		} else if item.Result.Cost != want {
			t.Fatalf("item %d cost %v != item 0 cost %v", i, item.Result.Cost, want)
		}
	}
	if br.Summary.Solves != 1 || br.Summary.Deduped != 7 || br.Summary.OK != 8 {
		t.Fatalf("summary: %+v", br.Summary)
	}
	if got := metric(t, ts, "rbserve_solves_total"); got != 1 {
		t.Fatalf("solves_total = %d, want 1 (in-batch dedup must funnel to one solve)", got)
	}
	if got := metric(t, ts, "rbserve_batch_dedup_total"); got != 7 {
		t.Fatalf("batch_dedup_total = %d, want 7", got)
	}
	if got := metric(t, ts, "rbserve_batch_items_total"); got != 8 {
		t.Fatalf("batch_items_total = %d, want 8", got)
	}
	// The latency histogram observed every item; the per-lane depth
	// gauges are exported.
	if got := metric(t, ts, `rbserve_request_seconds_bucket{le="+Inf"}`); got < 8 {
		t.Fatalf("request_seconds +Inf bucket = %d, want >= 8", got)
	}
	metric(t, ts, `rbserve_queue_depth{lane="fast"}`)
	metric(t, ts, `rbserve_queue_depth{lane="heavy"}`)
}

// TestBatchItemErrorsDontPoisonSiblings: invalid items fail alone with
// per-item errors; valid items in the same batch still solve.
func TestBatchItemErrorsDontPoisonSiblings(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := daggen.Pyramid(4)
	body := fmt.Sprintf(`{"items":[
		{"dag":%s,"model":"oneshot","r":3},
		{"dag":%s,"model":"warp-drive","r":3},
		{"model":"oneshot","r":3},
		{"dag":%s,"model":"oneshot","r":3}
	],"deadline_ms":2000}`, dagJSON(t, g), dagJSON(t, g), dagJSON(t, permuted(g, 99)))
	code, br, raw := postBatch(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if br.Items[0].Error != "" || br.Items[3].Error != "" {
		t.Fatalf("valid items poisoned: %+v / %+v", br.Items[0], br.Items[3])
	}
	if !br.Items[0].Result.Optimal || !br.Items[3].Result.Optimal {
		t.Fatalf("valid items not optimal: %+v / %+v", br.Items[0].Result, br.Items[3].Result)
	}
	for _, i := range []int{1, 2} {
		if br.Items[i].Error == "" || br.Items[i].Status != http.StatusUnprocessableEntity {
			t.Fatalf("invalid item %d not rejected: %+v", i, br.Items[i])
		}
	}
	if br.Summary.OK != 2 || br.Summary.Errors != 2 || br.Summary.Solves != 1 || br.Summary.Deduped != 1 {
		t.Fatalf("summary: %+v", br.Summary)
	}
}

// TestBatchFastLaneUnderHeavySaturation: with the heavy lane pinned by
// a gated solve, a cache-served batch item still completes within its
// deadline through the fast lane — no head-of-line blocking across
// cost classes.
func TestBatchFastLaneUnderHeavySaturation(t *testing.T) {
	s := New(Config{HeavyLaneWorkers: 1, HeavyLaneQueue: 2, FastLaneWorkers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Prime the cache with the real solver, then gate every later solve.
	cached := daggen.Pyramid(4)
	code, _, raw := postSolve(t, ts, fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, cached)))
	if code != http.StatusOK {
		t.Fatalf("prime: status %d: %s", code, raw)
	}
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	s.solveFn = func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error) {
		started <- struct{}{}
		<-gate
		return anytime.Solve(ctx, p, anytime.Options{})
	}
	defer close(gate)

	// Saturate the heavy lane: a distinct uncached instance whose
	// deadline exceeds the fast-lane budget blocks the only heavy
	// worker.
	heavyDone := make(chan BatchResponse, 1)
	go func() {
		_, br, _ := postBatch(t, ts, batchBody(t, 2000, daggen.Chain(9)))
		heavyDone <- br
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("heavy solve never started")
	}

	// The cache-served item must ride the fast lane past the blocked
	// heavy worker, well within its deadline.
	t0 := time.Now()
	code, br, raw := postBatch(t, ts, batchBody(t, 2000, permuted(cached, 7)))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("cache-hit batch item took %s behind a saturated heavy lane", elapsed)
	}
	item := br.Items[0]
	if item.Error != "" || item.Result == nil || !item.Result.Cached {
		t.Fatalf("expected cache-served item, got %+v", item)
	}
	if item.Lane != "fast" {
		t.Fatalf("cache-served item rode lane %q, want fast", item.Lane)
	}

	gate <- struct{}{} // release the heavy solve (close(gate) frees any rest)
	select {
	case br := <-heavyDone:
		if br.Items[0].Lane != "heavy" {
			t.Fatalf("uncached long-budget item rode lane %q, want heavy", br.Items[0].Lane)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("heavy batch never completed")
	}
}

// TestBatchAdmissionControlSheds: once the heavy lane's queue is full,
// further heavy groups are shed with per-item 429s, and a batch that is
// shed whole gets the whole-request 429 + Retry-After.
func TestBatchAdmissionControlSheds(t *testing.T) {
	s := New(Config{HeavyLaneWorkers: 1, HeavyLaneQueue: 1, FastLaneWorkers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	s.solveFn = func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error) {
		started <- struct{}{}
		<-gate
		return anytime.Solve(ctx, p, anytime.Options{})
	}
	defer close(gate)

	// Pin the single heavy worker...
	pinned := make(chan struct{})
	go func() {
		defer close(pinned)
		postBatch(t, ts, batchBody(t, 2000, daggen.Chain(9)))
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("pinning solve never started")
	}
	// ...then fill its queue (the worker is blocked, so this group
	// stays queued) alongside two groups that must shed.
	mixed := make(chan BatchResponse, 1)
	go func() {
		_, br, _ := postBatch(t, ts, batchBody(t, 2000, daggen.Chain(10), daggen.Chain(11), daggen.Chain(12)))
		mixed <- br
	}()
	// The queued group occupies the heavy lane's only slot; poll until
	// the two overflow groups were shed.
	deadline := time.Now().Add(5 * time.Second)
	for metric(t, ts, "rbserve_batch_shed_total") < 2 {
		if time.Now().After(deadline) {
			t.Fatal("overflow groups never shed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// With the queue still full, a batch of all-new heavy work is shed
	// whole: whole-request 429 with a Retry-After estimate.
	resp, err := http.Post(ts.URL+"/solve/batch", "application/json",
		strings.NewReader(batchBody(t, 2000, daggen.Chain(13))))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fully-shed batch status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("fully-shed batch missing Retry-After")
	}

	gate <- struct{}{} // release the pinning solve
	gate <- struct{}{} // release the queued mixed-batch group
	<-pinned
	br := <-mixed
	var shed int
	for _, item := range br.Items {
		if item.Status == http.StatusTooManyRequests {
			shed++
			if !strings.Contains(item.Error, "saturated") {
				t.Fatalf("shed item error %q", item.Error)
			}
		}
	}
	if shed != 2 {
		t.Fatalf("mixed batch shed %d items, want 2: %+v", shed, br.Items)
	}
}
