package solve

import (
	"errors"
	"fmt"
	"sync"

	"rbpebble/internal/pebble"
)

// The parallel exact solver shards the state space by state hash: shard
// owner = hashKey(packed state) mod P. Each worker owns its shard's open
// list, visited table and node log, so no locks guard the hot
// structures. The search proceeds in synchronous rounds:
//
//   - expand: every worker pops a batch of its locally-cheapest entries
//     and generates successor proposals, bucketed by destination shard
//     (computed from the successor's hash).
//   - relax: every worker consumes the proposals addressed to its shard,
//     deduplicating and pushing improvements into its own open list.
//
// Completed states are not expanded; they update a shared incumbent
// (mutex-guarded, cold path). The incumbent is returned as the proven
// optimum only once the globally smallest open f-value is no smaller
// than the incumbent's cost — the standard safety argument for batched
// or parallel best-first search, and the reason expanding entries beyond
// the global minimum is wasted work at worst, never an incorrect answer.

// parBatch is the number of entries each worker pops per round. Small
// enough to keep workers near the cost frontier, large enough to
// amortize the round barriers.
const parBatch = 64

// parNode mirrors searchNode for the sharded search; parents live in the
// node log of another shard, so the reference is (shard, index).
type parNode struct {
	parentShard int32 // -1 for the root
	parentNode  int32
	ref         int32
	move        pebble.Move
}

// proposal is one successor handed from an expanding worker to the
// destination shard's owner. The packed key words travel in a parallel
// flat buffer (kw words per proposal, same order). Only g travels: the
// owning shard computes (and caches) the heuristic once per distinct
// state, so senders never re-estimate shared states. pf is the f of the
// generating expansion (used by the async engine both as a pathmax
// floor on the child's priority and as the certified in-flight
// watermark of pending mailbox batches; the sync-rounds engine leaves
// it zero).
type proposal struct {
	hash       uint64
	g          int64
	pf         int64
	srcShard   int32 // shard owning the parent node (used by the async engine)
	parentNode int32
	move       pebble.Move
}

// parWorker is one shard owner.
type parWorker struct {
	id    int32
	ctx   *searchCtx
	table *stateTable // payloadWithH: best cost + cached heuristic per ref
	open  bucketQueue
	nodes []parNode

	outMeta [][]proposal // outMeta[dest]
	outKeys [][]uint64   // outKeys[dest], kw words per proposal
	popped  int          // expansions this round
	pushed  int

	cumPopped int // cumulative counters (snapshot introspection)
	cumPushed int
}

func exactParallel(p Problem, opts ExactOptions, start *pebble.State, maxStates int) (Solution, error) {
	nw := opts.Parallel
	kw := start.PackedWords()
	base := newSearchCtx(p, opts, start)
	workers := make([]*parWorker, nw)
	for i := range workers {
		ctx := base
		if i > 0 {
			ctx = base.cloneForWorker(start)
		}
		workers[i] = &parWorker{
			id:      int32(i),
			ctx:     ctx,
			table:   newStateTable(kw, payloadWithH, 256),
			outMeta: make([][]proposal, nw),
			outKeys: make([][]uint64, nw),
		}
	}

	expanded, pushed := 0, 0
	lower := int64(0) // certified lower bound (see exactSerial)
	var sampler *progressSampler
	if opts.Progress != nil {
		sampler = newProgressSampler(opts.ProgressEvery)
	}
	report := func() {
		if opts.Stats != nil {
			distinct, tableBytes := 0, int64(0)
			for _, w := range workers {
				distinct += w.table.count()
				tableBytes += w.table.bytes()
			}
			*opts.Stats = ExactStats{Expanded: expanded, Pushed: pushed, Distinct: distinct, LowerBound: lower, TableBytes: tableBytes}
		}
	}

	rootKey := start.AppendPacked(nil)
	rootHash := hashKey(rootKey)
	h0, dead := base.lb.estimate(start)
	if dead {
		report()
		return Solution{}, ErrInfeasible
	}
	rw := workers[rootHash%uint64(nw)]
	rootRef, _ := rw.table.lookupOrAdd(rootKey, rootHash)
	rw.table.setBest(rootRef, 0)
	rw.table.setH(rootRef, h0)
	rw.nodes = append(rw.nodes, parNode{parentShard: -1, parentNode: -1, ref: rootRef})
	rw.open.push(heapEntry{f: h0, g: 0, node: 0})
	pushed = 1
	lower = h0

	var (
		incMu    sync.Mutex
		incG     int64 = costUnreached
		incShard int32
		incNode  int32
	)
	improveIncumbent := func(g int64, shard, node int32) {
		incMu.Lock()
		if g < incG {
			incG, incShard, incNode = g, shard, node
		}
		incMu.Unlock()
	}

	var wg sync.WaitGroup
	for {
		// Global cost frontier: the smallest f on any open list. Safe to
		// finalize the incumbent once it is no better.
		fmin := int64(costUnreached)
		for _, w := range workers {
			if w.open.len() > 0 {
				if f, _ := w.open.top(); f < fmin {
					fmin = f
				}
			}
		}
		if fmin == costUnreached && incG == costUnreached {
			report()
			return Solution{}, errors.New("solve: state space exhausted without completing (unreachable for feasible R)")
		}
		// At a round boundary every proposal has been relaxed into a
		// heap, so fmin is the true min open f — a certified lower bound
		// on the optimum (capped by the incumbent, which is achievable).
		if rl := min(fmin, incG); rl > lower {
			lower = rl
		}
		if incG <= fmin { // covers "all heaps empty" when an incumbent exists
			break
		}
		if opts.Cancel != nil {
			select {
			case <-opts.Cancel:
				report()
				return Solution{}, fmt.Errorf("%w after %d states (lower bound %d)", ErrCanceled, expanded, lower)
			default:
			}
		}
		if opts.MaxTableBytes > 0 {
			// Round boundary: every worker is quiescent, so summing the
			// shard tables here is race-free, and lower is the certified
			// bound harvested into the memory-budget abort.
			var tb int64
			for _, w := range workers {
				tb += w.table.bytes()
			}
			if tb > opts.MaxTableBytes {
				report()
				return Solution{}, fmt.Errorf("%w: %d table bytes over budget %d after %d states (lower bound %d)",
					ErrMemoryBudget, tb, opts.MaxTableBytes, expanded, lower)
			}
		}
		// Round boundaries are the natural snapshot points: every worker
		// is quiescent here, so their heaps and tables are safe to read
		// from this single-threaded section.
		if sampler != nil && sampler.due() {
			opts.Progress(syncRoundsProgress(sampler, expanded, pushed, lower, fmin, workers))
		}

		// Expand phase.
		for _, w := range workers {
			wg.Add(1)
			go func(w *parWorker) {
				defer wg.Done()
				w.expandBatch(nw, improveIncumbent)
			}(w)
		}
		wg.Wait()
		for _, w := range workers {
			expanded += w.popped
			w.cumPopped += w.popped
		}
		if expanded > maxStates {
			report()
			return Solution{}, fmt.Errorf("%w: %d states", ErrStateLimit, maxStates)
		}

		// Relax phase.
		for _, w := range workers {
			wg.Add(1)
			go func(w *parWorker) {
				defer wg.Done()
				w.relax(workers)
			}(w)
		}
		wg.Wait()
		for _, w := range workers {
			pushed += w.pushed
			w.cumPushed += w.pushed
		}
	}

	report()
	// Reconstruct the incumbent's move chain across shard node logs.
	logs := make([][]parNode, nw)
	for i, w := range workers {
		logs[i] = w.nodes
	}
	return shardTrace(p, logs, incShard, incNode), nil
}

// syncRoundsProgress builds the round-boundary snapshot. Called from
// the coordinator's single-threaded section with all workers quiesced,
// so the per-shard heaps and tables are safe to read directly.
func syncRoundsProgress(s *progressSampler, expanded, pushed int, lower, fmin int64, workers []*parWorker) ExactProgress {
	elapsed, rate := s.tick(expanded)
	pr := ExactProgress{
		Engine:     "sync-rounds",
		Expanded:   expanded,
		LowerBound: lower,
		Elapsed:    elapsed,
		Rate:       rate,
		Pushed:     pushed,
		FrontierF:  normF(fmin),
		FrontierG:  -1,
		Workers:    make([]WorkerProgress, len(workers)),
	}
	var slots int64
	for i, w := range workers {
		wp := WorkerProgress{
			ID:         i,
			Expanded:   w.cumPopped,
			Pushed:     w.cumPushed,
			OpenSize:   w.open.len(),
			HeapMinF:   -1,
			Floor:      -1,
			TableCount: w.table.count(),
			TableBytes: w.table.bytes(),
		}
		if w.open.len() > 0 {
			f, g := w.open.top()
			wp.HeapMinF = f
			if f == pr.FrontierF {
				pr.FrontierG = g
			}
		}
		pr.Distinct += wp.TableCount
		pr.OpenSize += wp.OpenSize
		pr.TableBytes += wp.TableBytes
		slots += int64(len(w.table.slots))
		pr.Workers[i] = wp
	}
	if slots > 0 {
		pr.TableLoad = float64(pr.Distinct) / float64(slots)
	}
	return pr
}

// expandBatch pops up to parBatch fresh entries from this shard's open
// list, expanding each into per-destination proposal buffers.
func (w *parWorker) expandBatch(nw int, improveIncumbent func(g int64, shard, node int32)) {
	c := w.ctx
	w.popped = 0
	for d := 0; d < nw; d++ {
		w.outMeta[d] = w.outMeta[d][:0]
		w.outKeys[d] = w.outKeys[d][:0]
	}
	for w.popped < parBatch && w.open.len() > 0 {
		e := w.open.pop()
		nd := w.nodes[e.node]
		if e.g > w.table.best(nd.ref) {
			continue // stale
		}
		key := w.table.key(nd.ref)
		c.scratch.RestorePacked(key)
		if c.scratch.Complete() {
			improveIncumbent(e.g, w.id, e.node)
			continue
		}
		w.popped++
		c.moveBuf = c.moveBuf[:0]
		c.appendMoves(c.scratch, key)
		for _, m := range c.moveBuf {
			undo, err := c.scratch.ApplyForUndo(m)
			if err != nil {
				panic("solve: appendMoves emitted illegal move: " + err.Error())
			}
			childG := e.g + c.moveCost(m)
			c.keyBuf = c.scratch.AppendPacked(c.keyBuf[:0])
			ch := hashKey(c.keyBuf)
			d := ch % uint64(nw)
			w.outMeta[d] = append(w.outMeta[d], proposal{
				hash: ch, g: childG, parentNode: e.node, move: m,
			})
			w.outKeys[d] = append(w.outKeys[d], c.keyBuf...)
			c.scratch.Undo(undo)
		}
	}
}

// relax merges every proposal addressed to this shard into its table and
// open list.
func (w *parWorker) relax(workers []*parWorker) {
	kw := w.table.kw
	w.pushed = 0
	for _, src := range workers {
		meta := src.outMeta[w.id]
		keys := src.outKeys[w.id]
		for i, pr := range meta {
			key := keys[i*kw : (i+1)*kw]
			ref, isNew := w.table.lookupOrAdd(key, pr.hash)
			if isNew {
				// Estimate (and detect dead states) once per distinct
				// state, on the owning shard.
				w.ctx.scratch.RestorePacked(key)
				h, dead := w.ctx.lb.estimate(w.ctx.scratch)
				w.table.setH(ref, h)
				if dead {
					w.table.setBest(ref, costDead)
				}
			}
			if w.table.best(ref) <= pr.g {
				continue
			}
			w.table.setBest(ref, pr.g)
			w.nodes = append(w.nodes, parNode{
				parentShard: src.id, parentNode: pr.parentNode,
				ref: ref, move: pr.move,
			})
			w.open.push(heapEntry{f: pr.g + w.table.h(ref), g: pr.g, node: int32(len(w.nodes) - 1)})
			w.pushed++
		}
	}
}
